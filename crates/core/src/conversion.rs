//! TPHE ↔ MPC conversions — the glue of the hybrid framework.
//!
//! * [`ciphers_to_shares`] is the paper's **Algorithm 2**: mask an
//!   encrypted value with every client's random term, threshold-decrypt the
//!   sum, and let each client keep the negation of its mask as its share.
//!   Extended here with a public offset so signed fixed-point plaintexts
//!   convert correctly.
//! * [`shares_to_ciphers`] is the reverse direction used by the enhanced
//!   protocol (§5.2): every client encrypts its own share and the
//!   ciphertexts are summed homomorphically. The result's plaintext may
//!   carry an additive multiple of the share modulus `p` (share sums wrap);
//!   every consumer reduces modulo `p` on the next conversion, so the slack
//!   is harmless — see DESIGN.md §8.

use crate::decrypt::joint_decrypt_vec;
use crate::party::PartyContext;
use pivot_bignum::BigUint;
use pivot_mpc::{Fp, Share, MODULUS};
use pivot_paillier::{batch, vector, Ciphertext, SlotCodec};
use rand::Rng;

/// Reduce a decrypted plaintext into the share field, interpreting the
/// upper half of `Z_N` as negative (signed Paillier encoding).
pub fn plaintext_to_field(pk: &pivot_paillier::PublicKey, v: &BigUint) -> Fp {
    let p = BigUint::from_u64(MODULUS);
    if v > pk.half_n() {
        // negative: v = N - |x|  ⇒  x ≡ -(N - v) (mod p)
        let mag = pk.n() - v;
        -Fp::new(mag.rem_of(&p).to_u64().expect("reduced below p"))
    } else {
        Fp::new(v.rem_of(&p).to_u64().expect("reduced below p"))
    }
}

/// Algorithm 2 (batched): convert encrypted values into additive shares.
///
/// Plaintexts must be *signed integers of magnitude below `2^(int_bits-1)`*
/// modulo any slack multiple of the share modulus (see module docs). Each
/// client pays one encryption per value; the batch pays one joint
/// decryption per value — exactly the paper's `O(·) Cd` accounting.
pub fn ciphers_to_shares(ctx: &mut PartyContext<'_>, cts: &[Ciphertext]) -> Vec<Share> {
    if cts.is_empty() {
        return Vec::new();
    }
    let n = cts.len();
    let k = ctx.params.fixed.int_bits;
    let offset = BigUint::pow2(k - 1);

    // Every client draws rᵢ uniform in [0, p) and encrypts it (line 2).
    let my_masks: Vec<u64> = (0..n).map(|_| ctx.rng.gen_range(0..MODULUS)).collect();
    let mask_values: Vec<BigUint> = my_masks.iter().map(|&r| BigUint::from_u64(r)).collect();
    let threads = ctx.crypto_threads();
    let my_enc_masks = batch::encrypt_batch(&ctx.pk, &mask_values, &ctx.nonces, threads);
    ctx.metrics.add_encryptions(n as u64);

    // Exchange encrypted masks; everyone assembles [e] = [x + 2^(k-1) + Σ rᵢ]
    // (line 4, plus the signedness offset). The offset ciphertext is the
    // same public constant for every value — encode it once.
    // The exchange wait is CPU-idle: top up both offline pools.
    ctx.nonces.refill();
    ctx.engine.dealer_refill();
    let all_masks: Vec<Vec<Ciphertext>> = ctx.ep.exchange_all(&my_enc_masks);
    let enc_offset = ctx.pk.encrypt_trivial(&offset);
    let indices: Vec<usize> = (0..n).collect();
    let masked: Vec<Ciphertext> = pivot_runtime::global().map(threads, &indices, |&j| {
        let mut acc = ctx.pk.add(&cts[j], &enc_offset);
        for party_masks in &all_masks {
            acc = ctx.pk.add(&acc, &party_masks[j]);
        }
        acc
    });
    ctx.metrics
        .add_ciphertext_ops((n * (ctx.parties() + 1)) as u64);

    // Joint decryption (line 5) — integer e = x + 2^(k-1) + Σ rᵢ, no mod-N
    // wrap because N ≫ m·p + 2^k (checked in PivotParams::assert_valid).
    let opened = joint_decrypt_vec(ctx, &masked);

    // Shares (lines 6–8): party 0 keeps e − r₀ − 2^(k-1); others keep −rᵢ.
    let p = BigUint::from_u64(MODULUS);
    opened
        .iter()
        .zip(&my_masks)
        .map(|(e, &r)| {
            let mine = if ctx.id() == 0 {
                let e_mod = Fp::new(e.rem_of(&p).to_u64().expect("reduced"));
                e_mod - Fp::new(r) - Fp::pow2(k - 1)
            } else {
                -Fp::new(r)
            };
            Share(mine)
        })
        .collect()
}

/// Convert one encrypted value into a share.
pub fn cipher_to_share(ctx: &mut PartyContext<'_>, ct: &Ciphertext) -> Share {
    ciphers_to_shares(ctx, std::slice::from_ref(ct)).remove(0)
}

/// Algorithm 2 over **packed** ciphertexts: one threshold decryption
/// yields `used[i]` shares from ciphertext `i` (the packed-to-shares
/// unpack step). Every party masks every occupied slot with its own
/// uniform `r ∈ [0, p)` — the masks of one ciphertext are packed into a
/// single encryption, so the per-value mask-encryption and decryption
/// costs drop by the packing factor. The per-slot signedness offset
/// `2^(int_bits−1)` is added through one public packed constant, exactly
/// mirroring the scalar path.
///
/// The slot-width audit (`PivotParams::slot_plan`) guarantees
/// `value + offset + m·(p−1) < 2^slot_bits`, so slot sums never carry.
pub fn packed_ciphers_to_shares(
    ctx: &mut PartyContext<'_>,
    codec: &SlotCodec,
    cts: &[&Ciphertext],
    used: &[usize],
) -> Vec<Vec<Share>> {
    assert_eq!(cts.len(), used.len(), "one slot count per ciphertext");
    if cts.is_empty() {
        return Vec::new();
    }
    let n = cts.len();
    let k = ctx.params.fixed.int_bits;
    let offset = BigUint::pow2(k - 1);

    // Per-ciphertext packed masks: `used[i]` uniform draws, flat order.
    let my_masks: Vec<Vec<u64>> = used
        .iter()
        .map(|&u| (0..u).map(|_| ctx.rng.gen_range(0..MODULUS)).collect())
        .collect();
    let mask_plaintexts: Vec<BigUint> = my_masks
        .iter()
        .map(|row| {
            let vals: Vec<BigUint> = row.iter().map(|&r| BigUint::from_u64(r)).collect();
            codec.pack(&vals)
        })
        .collect();
    let threads = ctx.crypto_threads();
    let my_enc_masks = batch::encrypt_batch(&ctx.pk, &mask_plaintexts, &ctx.nonces, threads);
    ctx.metrics.add_encryptions(n as u64);

    // Exchange the packed masks; assemble [e] = [x + offsets + Σ rᵢ].
    ctx.nonces.refill();
    let all_masks: Vec<Vec<Ciphertext>> = ctx.ep.exchange_all(&my_enc_masks);
    // One public offset ciphertext per distinct occupancy.
    let max_used = used.iter().copied().max().unwrap_or(0);
    let enc_offsets: Vec<Ciphertext> = (0..=max_used)
        .map(|u| {
            ctx.pk
                .encrypt_trivial(&codec.pack(&vec![offset.clone(); u]))
        })
        .collect();
    let indices: Vec<usize> = (0..n).collect();
    let masked: Vec<Ciphertext> = pivot_runtime::global().map(threads, &indices, |&j| {
        let mut acc = ctx.pk.add(cts[j], &enc_offsets[used[j]]);
        for party_masks in &all_masks {
            acc = ctx.pk.add(&acc, &party_masks[j]);
        }
        acc
    });
    ctx.metrics
        .add_ciphertext_ops((n * (ctx.parties() + 1)) as u64);

    // One joint decryption per *packed* ciphertext.
    let opened = joint_decrypt_vec(ctx, &masked);

    // Unpack: slot s of ciphertext i opens to xᵢₛ + 2^(k−1) + Σ r; party 0
    // keeps e − r₀ − 2^(k−1) mod p, the others keep −r.
    let p = BigUint::from_u64(MODULUS);
    let offset_mod_p = Fp::pow2(k - 1);
    opened
        .iter()
        .zip(&my_masks)
        .zip(used)
        .map(|((e, masks), &u)| {
            let slots = codec.unpack(e, u);
            slots
                .into_iter()
                .zip(masks)
                .map(|(slot, &r)| {
                    let mine = if ctx.id() == 0 {
                        let e_mod = Fp::new(slot.rem_of(&p).to_u64().expect("reduced below p"));
                        e_mod - Fp::new(r) - offset_mod_p
                    } else {
                        -Fp::new(r)
                    };
                    Share(mine)
                })
                .collect()
        })
        .collect()
}

/// Algorithm 2 over **dynamically packed** scalar ciphertexts, with one
/// audited slot width per group.
///
/// Each group supplies a bound `2^bound_bits` on its plaintexts' signed
/// magnitude — *including* any mod-p slack the ciphertexts carry (§5.2
/// sums, Eqn-10 products). The conversion shift-adds as many scalars as
/// the audited width admits into each packed ciphertext before the usual
/// mask → threshold-decrypt → share dance, so one joint decryption yields
/// up to `slots` shares instead of one. All groups settle in a single
/// exchange and a single decryption round.
///
/// Slot audit: a slot accumulates `x + 2^bound_bits` (the signedness
/// offset is applied homomorphically *before* the shift-add, so negative
/// encodings `N − |x|` never borrow from a neighbour slot) plus every
/// party's conversion mask `< m·(p−1)`; the slot width is the bit length
/// of that worst case. Share semantics are identical to
/// [`ciphers_to_shares`]: values are recovered mod p, slack reduces away.
pub fn packed_share_conversion_groups(
    ctx: &mut PartyContext<'_>,
    groups: &[(&[Ciphertext], u32)],
) -> Vec<Vec<Share>> {
    let total: usize = groups.iter().map(|(cts, _)| cts.len()).sum();
    if total == 0 {
        return groups.iter().map(|_| Vec::new()).collect();
    }
    let threads = ctx.crypto_threads();
    let mask_bound = &BigUint::from_u64(ctx.parties() as u64) * &BigUint::from_u64(MODULUS - 1);

    // Audited codec per group, then the flat chunk list (group-major, so
    // unpacking below walks the same order).
    let codecs: Vec<SlotCodec> = groups
        .iter()
        .map(|&(_, bound_bits)| {
            let worst = &BigUint::pow2(bound_bits + 1) + &mask_bound;
            let slot_bits = worst.bits();
            let slots = SlotCodec::max_slots(ctx.params.keysize, slot_bits).max(1);
            SlotCodec::with_offset(slot_bits, slots, bound_bits)
        })
        .collect();
    let jobs: Vec<(usize, &[Ciphertext])> = groups
        .iter()
        .enumerate()
        .flat_map(|(g, &(cts, _))| cts.chunks(codecs[g].slots()).map(move |c| (g, c)))
        .collect();

    // Offset every scalar into non-negative range, then shift-add each
    // chunk into one packed ciphertext (`Σ (cᵢ + [2^b]) · 2^(w·i)`).
    let packed: Vec<Ciphertext> = pivot_runtime::global().map(threads, &jobs, |&(g, chunk)| {
        let codec = &codecs[g];
        let enc_off = ctx.pk.encrypt_trivial(&codec.offset());
        let shifted: Vec<Ciphertext> = chunk.iter().map(|c| ctx.pk.add(c, &enc_off)).collect();
        let weights: Vec<BigUint> = (0..chunk.len()).map(|i| codec.shift_factor(i)).collect();
        vector::dot_plain(&ctx.pk, &shifted, &weights)
    });
    ctx.metrics.add_ciphertext_ops(2 * total as u64);

    // Per-chunk packed masks, one encryption per packed ciphertext.
    let my_masks: Vec<Vec<u64>> = jobs
        .iter()
        .map(|(_, chunk)| {
            (0..chunk.len())
                .map(|_| ctx.rng.gen_range(0..MODULUS))
                .collect()
        })
        .collect();
    let mask_plaintexts: Vec<BigUint> = my_masks
        .iter()
        .zip(&jobs)
        .map(|(row, &(g, _))| {
            let vals: Vec<BigUint> = row.iter().map(|&r| BigUint::from_u64(r)).collect();
            codecs[g].pack(&vals)
        })
        .collect();
    let my_enc_masks = batch::encrypt_batch(&ctx.pk, &mask_plaintexts, &ctx.nonces, threads);
    ctx.metrics.add_encryptions(packed.len() as u64);

    // Exchange the packed masks; the wait is CPU-idle, top up the pools.
    ctx.nonces.refill();
    ctx.engine.dealer_refill();
    let all_masks: Vec<Vec<Ciphertext>> = ctx.ep.exchange_all(&my_enc_masks);
    let indices: Vec<usize> = (0..packed.len()).collect();
    let masked: Vec<Ciphertext> = pivot_runtime::global().map(threads, &indices, |&j| {
        let mut acc = packed[j].clone();
        for party_masks in &all_masks {
            acc = ctx.pk.add(&acc, &party_masks[j]);
        }
        acc
    });
    ctx.metrics
        .add_ciphertext_ops((packed.len() * ctx.parties()) as u64);

    // One joint decryption per *packed* ciphertext.
    let opened = joint_decrypt_vec(ctx, &masked);

    // Decode: slot ≡ x + 2^b + Σ r (mod p); party 0 subtracts its own
    // mask and the offset, the rest keep their mask negations.
    let p = BigUint::from_u64(MODULUS);
    let mut out: Vec<Vec<Share>> = groups
        .iter()
        .map(|(cts, _)| Vec::with_capacity(cts.len()))
        .collect();
    for ((e, masks), &(g, _)) in opened.iter().zip(&my_masks).zip(&jobs) {
        let codec = &codecs[g];
        let offset_mod_p = Fp::new(codec.offset().rem_of(&p).to_u64().expect("reduced below p"));
        for (slot, &r) in codec.unpack(e, masks.len()).into_iter().zip(masks) {
            let mine = if ctx.id() == 0 {
                let e_mod = Fp::new(slot.rem_of(&p).to_u64().expect("reduced below p"));
                e_mod - Fp::new(r) - offset_mod_p
            } else {
                -Fp::new(r)
            };
            out[g].push(Share(mine));
        }
    }
    out
}

/// Single-group [`packed_share_conversion_groups`]: pack `cts` under one
/// magnitude bound. Falls back to the scalar conversion when the audited
/// width admits fewer than two slots (packing would only add work).
pub fn packed_share_conversion(
    ctx: &mut PartyContext<'_>,
    cts: &[Ciphertext],
    bound_bits: u32,
) -> Vec<Share> {
    let mask_bound = &BigUint::from_u64(ctx.parties() as u64) * &BigUint::from_u64(MODULUS - 1);
    let worst = &BigUint::pow2(bound_bits + 1) + &mask_bound;
    if SlotCodec::max_slots(ctx.params.keysize, worst.bits()) < 2 {
        return ciphers_to_shares(ctx, cts);
    }
    packed_share_conversion_groups(ctx, &[(cts, bound_bits)])
        .pop()
        .expect("one group in, one group out")
}

/// §5.2 reverse conversion: every client encrypts its own share and the
/// ciphertexts are homomorphically summed. The plaintext equals the secret
/// plus a slack multiple of `p` below `m·p ≪ N`.
pub fn shares_to_ciphers(ctx: &mut PartyContext<'_>, shares: &[Share]) -> Vec<Ciphertext> {
    if shares.is_empty() {
        return Vec::new();
    }
    let share_values: Vec<BigUint> = shares
        .iter()
        .map(|s| BigUint::from_u64(s.0.value()))
        .collect();
    let threads = ctx.crypto_threads();
    let my_encs = batch::encrypt_batch(&ctx.pk, &share_values, &ctx.nonces, threads);
    ctx.metrics.add_encryptions(shares.len() as u64);
    ctx.nonces.refill();
    let all: Vec<Vec<Ciphertext>> = ctx.ep.exchange_all(&my_encs);
    ctx.metrics
        .add_ciphertext_ops((shares.len() * ctx.parties()) as u64);
    let indices: Vec<usize> = (0..shares.len()).collect();
    pivot_runtime::global().map(threads, &indices, |&j| {
        let mut acc = all[0][j].clone();
        for party in all.iter().skip(1) {
            acc = ctx.pk.add(&acc, &party[j]);
        }
        acc
    })
}

/// Convert one share into a ciphertext.
pub fn share_to_cipher(ctx: &mut PartyContext<'_>, share: Share) -> Ciphertext {
    shares_to_ciphers(ctx, &[share]).remove(0)
}
