//! Encrypted indicator vectors: the node mask `[α]` and the super client's
//! label-mask vectors `[γ]` (§4.1, §4.2).

use crate::metrics::Stage;
use crate::party::PartyContext;
use crate::stats::PackedChunking;
use crate::verify;
use pivot_bignum::BigUint;
use pivot_data::Task;
use pivot_paillier::{batch, Ciphertext, SlotCodec};

/// The encrypted per-class / per-moment label vectors `[L] = {[γ_k]}`.
///
/// Classification: one vector per class `k` with `γ_k = β_k ⊙ α`.
/// Regression: `γ_1 = (y+1) ⊙ α` and `γ_2 = (y+1)² ⊙ α` — labels are
/// normalized into `[-1, 1]` and **offset by +1** so every plaintext the
/// homomorphic pipeline touches is non-negative. Negative encodings would
/// wrap mod `N` when multiplied into the enhanced protocol's
/// slack-carrying masks and break the mod-`p` conversion (DESIGN.md §8);
/// the offset is removed linearly after share conversion
/// ([`crate::gain::convert_stats`]).
pub struct LabelMasks {
    pub gammas: Vec<Vec<Ciphertext>>,
    /// True when regression labels carry the +1 offset encoding.
    pub offset_encoded: bool,
}

/// Fresh root mask: `[α] = ([1], …, [1])` — all samples on the root
/// (encrypted 0/1 per the given plaintext mask for ensemble bootstraps).
///
/// The super client encrypts and broadcasts so **every party holds the
/// identical ciphertexts** — a hard protocol invariant: joint threshold
/// decryption combines partial decryptions of what must be one ciphertext.
pub fn initial_mask(ctx: &mut PartyContext<'_>, included: &[bool]) -> Vec<Ciphertext> {
    let started = std::time::Instant::now();
    let (cts, bundle) = if ctx.is_super_client() {
        let values: Vec<BigUint> = included
            .iter()
            .map(|&b| BigUint::from_u64(u64::from(b)))
            .collect();
        verify::scrub_witnesses(ctx);
        let mut cts = batch::encrypt_batch(&ctx.pk, &values, &ctx.nonces, ctx.crypto_threads());
        ctx.metrics.add_encryptions(included.len() as u64);
        let bundle = verify::prove_popk(ctx, "setup", &mut cts, &values);
        ctx.ep.broadcast(&cts);
        (cts, bundle)
    } else {
        (ctx.ep.recv(ctx.super_client), None)
    };
    verify::check_popk(ctx, "setup", ctx.super_client, &cts, bundle);
    ctx.metrics
        .add_time(Stage::LocalComputation, started.elapsed());
    cts
}

/// Super client: compute `[L]` for the current node and broadcast it; the
/// other clients receive it (§4.1 local computation step, first half).
pub fn compute_label_masks(
    ctx: &mut PartyContext<'_>,
    alpha: &[Ciphertext],
    fixed_scale: bool,
) -> LabelMasks {
    let task = ctx.current_task();
    let class_vectors = match task {
        Task::Classification { classes } => classes,
        Task::Regression => 2,
    };
    if ctx.is_super_client() {
        let labels = ctx.view.labels.clone().expect("super client holds labels");
        let mut gammas = Vec::with_capacity(class_vectors);
        let mut bundles = Vec::with_capacity(class_vectors);
        match task {
            Task::Classification { classes } => {
                for k in 0..classes {
                    let beta: Vec<bool> = labels.iter().map(|&y| y as usize == k).collect();
                    verify::scrub_witnesses(ctx);
                    let mut gamma = batch::mask_binary_batch(
                        &ctx.pk,
                        alpha,
                        &beta,
                        &ctx.nonces,
                        ctx.crypto_threads(),
                    );
                    ctx.metrics.add_encryptions(alpha.len() as u64);
                    let xs: Vec<BigUint> = beta
                        .iter()
                        .map(|&b| BigUint::from_u64(u64::from(b)))
                        .collect();
                    bundles.push(verify::prove_popcm(
                        ctx,
                        "label_masks",
                        alpha,
                        &mut gamma,
                        &xs,
                    ));
                    gammas.push(gamma);
                }
            }
            Task::Regression => {
                // β₁ = (y+1), β₂ = (y+1)² in fixed-point (offset keeps the
                // plaintexts non-negative); γ = β ⊗ [α] element-wise.
                let scale = if fixed_scale {
                    (1u64 << ctx.params.fixed.frac_bits) as f64
                } else {
                    1.0
                };
                for moment in 1..=2 {
                    let encodings: Vec<BigUint> = labels
                        .iter()
                        .map(|&y| {
                            assert!(
                                y.abs() <= 1.0 + 1e-9,
                                "regression labels must be normalized into [-1, 1]"
                            );
                            let shifted = y + 1.0;
                            let v = if moment == 1 {
                                shifted
                            } else {
                                shifted * shifted
                            };
                            encode_signed(ctx, v * scale)
                        })
                        .collect();
                    let threads = ctx.crypto_threads();
                    verify::scrub_witnesses(ctx);
                    let scaled = batch::mul_plain_batch(&ctx.pk, alpha, &encodings, threads);
                    let mut gamma =
                        batch::rerandomize_batch(&ctx.pk, &scaled, &ctx.nonces, threads);
                    ctx.metrics.add_ciphertext_ops(2 * alpha.len() as u64);
                    bundles.push(verify::prove_popcm(
                        ctx,
                        "label_masks",
                        alpha,
                        &mut gamma,
                        &encodings,
                    ));
                    gammas.push(gamma);
                }
            }
        }
        for gamma in &gammas {
            ctx.ep.broadcast(gamma);
        }
        for (gamma, bundle) in gammas.iter().zip(bundles) {
            verify::check_popcm(ctx, "label_masks", ctx.super_client, alpha, gamma, bundle);
        }
        LabelMasks {
            gammas,
            offset_encoded: matches!(task, Task::Regression),
        }
    } else {
        let gammas: Vec<Vec<Ciphertext>> = (0..class_vectors)
            .map(|_| ctx.ep.recv::<Vec<Ciphertext>>(ctx.super_client))
            .collect();
        for gamma in &gammas {
            verify::check_popcm(ctx, "label_masks", ctx.super_client, alpha, gamma, None);
        }
        LabelMasks {
            gammas,
            offset_encoded: matches!(task, Task::Regression),
        }
    }
}

/// The packed label vectors: per chunk of the stride, one ciphertext per
/// sample holding `(α_j, γ_1(j), …)` in consecutive slots. Dot products
/// against these produce whole packed statistics at once (the SecureBoost+
/// move: the packing factor divides the per-split ciphertext work).
pub struct PackedLabels {
    /// `chunks[c][sample]` — slots `c·chunk_width …` of the stride.
    pub chunks: Vec<Vec<Ciphertext>>,
    pub chunking: PackedChunking,
    pub samples: usize,
    /// True when regression labels carry the +1 offset encoding.
    pub offset_encoded: bool,
}

/// The per-sample packed label multipliers `Σ_k β_k(j)·2^(w·k)` — fixed
/// for a whole training run (they depend only on the labels, task and
/// codec), so [`plan_packed_labels`] builds them once and every node
/// reuses the table. Non-super clients carry no multipliers; they only
/// receive the broadcast ciphertexts.
pub struct PackedLabelPlan {
    pub chunking: PackedChunking,
    /// `multipliers[chunk][sample]`, super client only.
    multipliers: Option<Vec<Vec<BigUint>>>,
    offset_encoded: bool,
}

/// Precompute the packed label-multiplier table for this run.
pub fn plan_packed_labels(ctx: &PartyContext<'_>, codec: &SlotCodec) -> PackedLabelPlan {
    let task = ctx.current_task();
    let stride = 1 + match task {
        Task::Classification { classes } => classes,
        Task::Regression => 2,
    };
    let chunking = PackedChunking::new(stride, codec.slots());
    let multipliers = ctx.is_super_client().then(|| {
        let labels = ctx.view.labels.as_ref().expect("super client holds labels");
        (0..chunking.chunks())
            .map(|c| {
                let lo = c * chunking.chunk_width;
                let hi = lo + chunking.widths[c];
                labels
                    .iter()
                    .map(|&y| {
                        let slot_vals: Vec<BigUint> = (lo..hi)
                            .map(|t| label_slot_value(ctx, task, y, t))
                            .collect();
                        codec.pack(&slot_vals)
                    })
                    .collect()
            })
            .collect()
    });
    PackedLabelPlan {
        chunking,
        multipliers,
        offset_encoded: matches!(task, Task::Regression),
    }
}

/// Super client: build and broadcast the packed label vectors for the
/// current node. Slot `0` carries `α_j` itself; slot `1+k` carries
/// `γ_k(j) = β_k(j)·α_j`. Because the super client knows the plaintext
/// multipliers `β_k(j)` (precomputed in the plan), the packed vector is
/// one `mul_plain` of `[α_j]` by the public packed multiplier plus a
/// re-randomization — no extra encryptions.
pub fn compute_packed_label_masks(
    ctx: &mut PartyContext<'_>,
    alpha: &[Ciphertext],
    plan: &PackedLabelPlan,
) -> PackedLabels {
    let chunking = plan.chunking.clone();
    let n = alpha.len();
    let started = std::time::Instant::now();
    let chunks = if let Some(multipliers) = &plan.multipliers {
        let threads = ctx.crypto_threads();
        let mut chunks = Vec::with_capacity(chunking.chunks());
        for chunk_multipliers in multipliers {
            assert_eq!(chunk_multipliers.len(), n);
            let scaled = batch::mul_plain_batch(&ctx.pk, alpha, chunk_multipliers, threads);
            let packed = batch::rerandomize_batch(&ctx.pk, &scaled, &ctx.nonces, threads);
            ctx.metrics.add_ciphertext_ops(2 * n as u64);
            ctx.ep.broadcast(&packed);
            chunks.push(packed);
        }
        chunks
    } else {
        (0..chunking.chunks())
            .map(|_| ctx.ep.recv::<Vec<Ciphertext>>(ctx.super_client))
            .collect()
    };
    ctx.metrics
        .add_time(Stage::LocalComputation, started.elapsed());
    PackedLabels {
        chunks,
        chunking,
        samples: n,
        offset_encoded: plan.offset_encoded,
    }
}

/// The plaintext multiplier for stride slot `t` of sample with label `y`:
/// `1` for the α slot, the class indicator or offset regression moment
/// otherwise.
fn label_slot_value(ctx: &PartyContext<'_>, task: Task, y: f64, t: usize) -> BigUint {
    if t == 0 {
        return BigUint::one();
    }
    match task {
        Task::Classification { .. } => {
            if y as usize == t - 1 {
                BigUint::one()
            } else {
                BigUint::zero()
            }
        }
        Task::Regression => {
            assert!(
                y.abs() <= 1.0 + 1e-9,
                "regression labels must be normalized into [-1, 1]"
            );
            let scale = (1u64 << ctx.params.fixed.frac_bits) as f64;
            let shifted = y + 1.0;
            let v = if t == 1 { shifted } else { shifted * shifted };
            BigUint::from_u64((v * scale).round() as u64)
        }
    }
}

/// Basic-protocol model update (§4.1): the winning client masks `[α]` with
/// its plaintext split indicators and broadcasts `[α_l]`, `[α_r]`.
pub fn update_mask_plain(
    ctx: &mut PartyContext<'_>,
    alpha: &[Ciphertext],
    winner: usize,
    left_indicator: Option<&[bool]>,
) -> (Vec<Ciphertext>, Vec<Ciphertext>) {
    let (l, r) = update_vectors_plain(
        ctx,
        std::slice::from_ref(&alpha.to_vec()),
        winner,
        left_indicator,
    );
    (
        l.into_iter().next().expect("one vector"),
        r.into_iter().next().expect("one vector"),
    )
}

/// Generalized §7.2 model update: the winner masks `[α]` *and* any
/// encrypted label vectors (`[γ₁]`, `[γ₂]` for GBDT) with the same split
/// indicator, broadcasting the left/right versions of each.
pub fn update_vectors_plain(
    ctx: &mut PartyContext<'_>,
    vectors: &[Vec<Ciphertext>],
    winner: usize,
    left_indicator: Option<&[bool]>,
) -> (Vec<Vec<Ciphertext>>, Vec<Vec<Ciphertext>>) {
    let (lefts, rights, bundles) = if ctx.id() == winner {
        let v_l = left_indicator.expect("winner knows its split indicator");
        let v_r: Vec<bool> = v_l.iter().map(|&b| !b).collect();
        let xs_l: Vec<BigUint> = v_l
            .iter()
            .map(|&b| BigUint::from_u64(u64::from(b)))
            .collect();
        let xs_r: Vec<BigUint> = v_r
            .iter()
            .map(|&b| BigUint::from_u64(u64::from(b)))
            .collect();
        let mut lefts = Vec::with_capacity(vectors.len());
        let mut rights = Vec::with_capacity(vectors.len());
        let mut bundles = Vec::with_capacity(2 * vectors.len());
        let threads = ctx.crypto_threads();
        for vec in vectors {
            verify::scrub_witnesses(ctx);
            let mut l = batch::mask_binary_batch(&ctx.pk, vec, v_l, &ctx.nonces, threads);
            bundles.push(verify::prove_popcm(ctx, "update", vec, &mut l, &xs_l));
            verify::scrub_witnesses(ctx);
            let mut r = batch::mask_binary_batch(&ctx.pk, vec, &v_r, &ctx.nonces, threads);
            bundles.push(verify::prove_popcm(ctx, "update", vec, &mut r, &xs_r));
            ctx.metrics.add_encryptions(2 * vec.len() as u64);
            ctx.ep.broadcast(&l);
            ctx.ep.broadcast(&r);
            lefts.push(l);
            rights.push(r);
        }
        (lefts, rights, bundles)
    } else {
        let mut lefts = Vec::with_capacity(vectors.len());
        let mut rights = Vec::with_capacity(vectors.len());
        for _ in vectors {
            lefts.push(ctx.ep.recv::<Vec<Ciphertext>>(winner));
            rights.push(ctx.ep.recv::<Vec<Ciphertext>>(winner));
        }
        (lefts, rights, vec![None; 2 * vectors.len()])
    };
    let mut bundles = bundles.into_iter();
    for (vec, (l, r)) in vectors.iter().zip(lefts.iter().zip(&rights)) {
        verify::check_popcm(ctx, "update", winner, vec, l, bundles.next().unwrap());
        verify::check_popcm(ctx, "update", winner, vec, r, bundles.next().unwrap());
    }
    (lefts, rights)
}

/// Encode a signed real as a Paillier plaintext (upper half = negative).
pub fn encode_signed(ctx: &PartyContext<'_>, v: f64) -> BigUint {
    let rounded = v.round();
    if rounded >= 0.0 {
        BigUint::from_u64(rounded as u64)
    } else {
        ctx.pk.n() - &BigUint::from_u64((-rounded) as u64)
    }
}
