//! **Pivot**: privacy preserving vertical federated learning for tree-based
//! models (Wu et al., VLDB 2020) — the paper's primary contribution.
//!
//! The crate implements, over the substrates of this workspace
//! (`pivot-paillier` TPHE, `pivot-mpc` SPDZ-style sharing,
//! `pivot-transport` messaging):
//!
//! * the **basic protocol** (§4): classification and regression tree
//!   training (Algorithm 3) where only the final plaintext tree is
//!   revealed, plus distributed prediction (Algorithm 4);
//! * the **enhanced protocol** (§5): split thresholds and leaf labels stay
//!   encrypted/secret-shared — private split selection (Theorem 2),
//!   encrypted-mask updating (Eqn 10), and secret-shared prediction;
//! * **ensemble extensions** (§7): random forests and GBDT (with encrypted
//!   residual labels and secure softmax);
//! * **differentially private training** (§9.2, Algorithms 5–6);
//! * the two evaluation **baselines** (§8): `SPDZ-DT` (training entirely in
//!   MPC) and `NPD-DT` (non-private distributed training).
//!
//! Every protocol is SPMD: each client runs the same entry point on its own
//! thread with its own [`party::PartyContext`]; see the crate examples and
//! the `tests/` directory for end-to-end drivers.

pub mod baselines;
pub mod checkpoint;
pub mod config;
pub mod conversion;
pub mod decrypt;
pub mod dp;
pub mod ensemble;
pub mod gain;
pub mod masks;
pub mod metrics;
pub mod model;
pub mod party;
pub mod predict_basic;
pub mod predict_enhanced;
pub mod stats;
pub mod train_basic;
pub mod train_enhanced;
pub mod verify;

pub use checkpoint::{BarrierMeta, CheckpointSink, StateCursors};
pub use config::{AdversarySpec, PivotParams, Protocol, Scheduling, Verification};
pub use metrics::{ProtocolMetrics, VerificationCounters};
pub use model::{ConcealedNode, ConcealedTree};
pub use party::PartyContext;
// Re-exported so report-layer consumers (CLI, bench) can name the
// comparison policy and its telemetry without a direct pivot-mpc edge.
pub use pivot_mpc::{CompareBits, ComparisonCounters, DealerPoolStats};
pub use pivot_trace::TraceLevel;
