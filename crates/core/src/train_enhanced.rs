//! Pivot enhanced protocol training (§5.2): the released model conceals
//! split thresholds and leaf labels.
//!
//! Differences from the basic protocol, per node:
//!
//! * only the winning `(i*, j*)` block of the best split is revealed;
//!   `⟨s*⟩` stays secret and is expanded into an encrypted one-hot `[λ]`;
//! * the winner privately selects its split-indicator column via Theorem 2
//!   (`[v] = V ⊗ [λ]`) and the encrypted threshold via a homomorphic dot
//!   product with its candidate-value vector;
//! * the mask update follows Eqn (10): `[α]` is converted to shares
//!   (Algorithm 2) and every client contributes `⟨α_j⟩ᵢ ⊗ [v_j]`, summed
//!   at the winner — `O(n)` threshold decryptions per node, the cost that
//!   separates Pivot-Enhanced from Pivot-Basic in Figures 4–5;
//! * leaf labels are converted share→ciphertext instead of being opened.

use crate::config::Protocol;
use crate::conversion::{ciphers_to_shares, shares_to_ciphers};
use crate::gain::{
    best_split, convert_stats, leaf_label_share, prune_decision, reveal_block_only, split_gains,
    NodeShares,
};
use crate::masks::{compute_label_masks, initial_mask, LabelMasks};
use crate::metrics::Stage;
use crate::model::{ConcealedNode, ConcealedTree};
use crate::party::PartyContext;
use crate::stats::{pooled_statistics, LocalSplits, SplitLayout};
use pivot_bignum::BigUint;
use pivot_mpc::Share;
use pivot_paillier::{batch, vector, Ciphertext};

/// Public offset added to fixed-point thresholds before encryption so the
/// PIR dot product only ever sees non-negative plaintexts (negative
/// encodings would wrap mod `N` and break the mod-`p` slack discipline).
pub fn threshold_offset_bits(ctx: &PartyContext<'_>) -> u32 {
    ctx.params.fixed.int_bits - 2
}

/// Train a single concealed decision tree (enhanced protocol).
pub fn train(ctx: &mut PartyContext<'_>) -> ConcealedTree {
    assert_eq!(
        ctx.params.protocol,
        Protocol::Enhanced,
        "enhanced training requires Protocol::Enhanced parameters"
    );
    assert!(
        ctx.params.keysize >= 192,
        "enhanced protocol needs keysize ≥ 192 (Eqn-10 slack headroom)"
    );
    let mask = vec![true; ctx.num_samples()];
    let local = LocalSplits::precompute(ctx);
    let layout = SplitLayout::build(ctx.ep, &local.counts());
    let alpha = initial_mask(ctx, &mask);
    let mut nodes = Vec::new();
    let root = build_node(ctx, &local, &layout, alpha, 0, &mut nodes);
    ConcealedTree {
        nodes,
        root,
        task: ctx.current_task(),
    }
}

fn build_node(
    ctx: &mut PartyContext<'_>,
    local: &LocalSplits,
    layout: &SplitLayout,
    alpha: Vec<Ciphertext>,
    depth: usize,
    nodes: &mut Vec<ConcealedNode>,
) -> usize {
    let masks = compute_label_masks(ctx, &alpha, true);

    let force_leaf = depth >= ctx.params.tree.max_depth || layout.total() == 0;
    if force_leaf {
        let enc_value = concealed_leaf_from_totals(ctx, &alpha, &masks);
        nodes.push(ConcealedNode::Leaf { enc_value });
        return nodes.len() - 1;
    }

    let enc = pooled_statistics(ctx, layout, local, &alpha, &masks);
    let shares = convert_stats(ctx, layout, &enc);

    // No purity check: it would leak a bit about the concealed labels.
    if prune_decision(ctx, &shares, false) {
        let enc_value = concealed_leaf(ctx, &shares);
        nodes.push(ConcealedNode::Leaf { enc_value });
        return nodes.len() - 1;
    }

    let gains = split_gains(ctx, &shares);
    let (best_idx, _gain) = best_split(ctx, &gains);
    // Reveal only the (client, feature) block; ⟨s*⟩ stays secret.
    let (winner, local_feature, s_share) = reveal_block_only(ctx, layout, best_idx);
    let n_splits = layout.counts[winner][local_feature];

    // ⟨λ⟩ one-hot of s*, then encrypted [λ] (§5.2 private split selection).
    let lambda_shares = ctx.metrics.time(Stage::MpcComputation, || {
        ctx.engine.onehot_vec(s_share, n_splits)
    });
    let lambda_enc = shares_to_ciphers(ctx, &lambda_shares);

    // Winner: PIR-select [v_l], [v_r] and the encrypted threshold.
    let (v_l, v_r, enc_threshold, feature_global) = ctx.metrics.time(Stage::ModelUpdate, || {
        if ctx.id() == winner {
            let inds = &local.indicators[local_feature];
            let n = ctx.view.num_samples();
            // Theorem-2 PIR selection per sample: independent dot
            // products, batched over the worker pool.
            let samples: Vec<usize> = (0..n).collect();
            let pairs: Vec<(Ciphertext, Ciphertext)> =
                pivot_runtime::global().map(ctx.crypto_threads(), &samples, |&j| {
                    let row: Vec<bool> = (0..n_splits).map(|t| inds[t][j]).collect();
                    let comp: Vec<bool> = row.iter().map(|&b| !b).collect();
                    (
                        vector::dot_binary(&ctx.pk, &lambda_enc, &row),
                        vector::dot_binary(&ctx.pk, &lambda_enc, &comp),
                    )
                });
            let (v_l, v_r): (Vec<Ciphertext>, Vec<Ciphertext>) = pairs.into_iter().unzip();
            ctx.metrics.add_ciphertext_ops((2 * n * n_splits) as u64);
            let enc_vals: Vec<BigUint> = local.candidates[local_feature]
                .thresholds
                .iter()
                .map(|&t| encode_threshold(ctx, t))
                .collect();
            let enc_threshold = vector::dot_plain(&ctx.pk, &lambda_enc, &enc_vals);
            let feature_global = ctx.view.feature_indices[local_feature];
            ctx.ep.broadcast(&v_l);
            ctx.ep.broadcast(&v_r);
            ctx.ep.broadcast(&enc_threshold);
            ctx.ep.broadcast(&feature_global);
            (v_l, v_r, enc_threshold, feature_global)
        } else {
            let v_l: Vec<Ciphertext> = ctx.ep.recv(winner);
            let v_r: Vec<Ciphertext> = ctx.ep.recv(winner);
            let enc_threshold: Ciphertext = ctx.ep.recv(winner);
            let feature_global: usize = ctx.ep.recv(winner);
            (v_l, v_r, enc_threshold, feature_global)
        }
    });

    // Eqn (10): encrypted-mask updating through share conversion.
    let alpha_shares = ciphers_to_shares(ctx, &alpha);
    let alpha_l = masked_product(ctx, &alpha_shares, &v_l, winner);
    let alpha_r = masked_product(ctx, &alpha_shares, &v_r, winner);
    drop(alpha);

    let left = build_node(ctx, local, layout, alpha_l, depth + 1, nodes);
    let right = build_node(ctx, local, layout, alpha_r, depth + 1, nodes);
    nodes.push(ConcealedNode::Internal {
        client: winner,
        feature_global,
        enc_threshold,
        left,
        right,
    });
    nodes.len() - 1
}

/// `[α'_j] = Σᵢ [⟨α_j⟩ᵢ · v_j]` — every client scales the encrypted split
/// indicator by its own share; the winner aggregates and broadcasts.
fn masked_product(
    ctx: &mut PartyContext<'_>,
    alpha_shares: &[Share],
    v: &[Ciphertext],
    winner: usize,
) -> Vec<Ciphertext> {
    ctx.metrics.time(Stage::ModelUpdate, || {
        let threads = ctx.crypto_threads();
        let share_values: Vec<BigUint> = alpha_shares
            .iter()
            .map(|s| BigUint::from_u64(s.0.value()))
            .collect();
        let my_terms = batch::mul_plain_batch(&ctx.pk, v, &share_values, threads);
        ctx.metrics.add_ciphertext_ops(my_terms.len() as u64);
        // The gather wait is CPU-idle: top up the randomness pool.
        ctx.nonces.refill();
        let gathered = ctx.ep.gather(winner, &my_terms);
        if ctx.id() == winner {
            let parts = gathered.expect("winner gathers");
            let n = alpha_shares.len();
            let indices: Vec<usize> = (0..n).collect();
            let sums: Vec<Ciphertext> = pivot_runtime::global().map(threads, &indices, |&j| {
                let mut acc = parts[0][j].clone();
                for part in parts.iter().skip(1) {
                    acc = ctx.pk.add(&acc, &part[j]);
                }
                acc
            });
            ctx.metrics.add_ciphertext_ops((n * ctx.parties()) as u64);
            ctx.ep.broadcast(&sums);
            sums
        } else {
            ctx.ep.recv(winner)
        }
    })
}

/// Encode a plaintext threshold for PIR selection: fixed-point plus the
/// public positivity offset.
fn encode_threshold(ctx: &PartyContext<'_>, threshold: f64) -> BigUint {
    let f = ctx.params.fixed.frac_bits;
    let off_bits = threshold_offset_bits(ctx);
    let scaled = (threshold * (1u64 << f) as f64).round();
    assert!(
        scaled.abs() < (1u64 << off_bits) as f64,
        "threshold {threshold} overflows the fixed-point layout"
    );
    let with_offset = scaled + (1u64 << off_bits) as f64;
    BigUint::from_u64(with_offset as u64)
}

/// Concealed leaf from full node statistics.
fn concealed_leaf(ctx: &mut PartyContext<'_>, shares: &NodeShares) -> Ciphertext {
    let label = leaf_label_share(ctx, shares);
    shares_to_ciphers(ctx, &[label]).remove(0)
}

/// Concealed leaf when the depth bound forces one (totals only).
fn concealed_leaf_from_totals(
    ctx: &mut PartyContext<'_>,
    alpha: &[Ciphertext],
    masks: &LabelMasks,
) -> Ciphertext {
    let all = vec![true; alpha.len()];
    let node_total = vector::dot_binary(&ctx.pk, alpha, &all);
    let mut flat = vec![node_total];
    for gamma in &masks.gammas {
        flat.push(vector::dot_binary(&ctx.pk, gamma, &all));
    }
    ctx.metrics
        .add_ciphertext_ops((alpha.len() * flat.len()) as u64);
    let converted = ciphers_to_shares(ctx, &flat);
    let mut node = NodeShares {
        n_l: Vec::new(),
        g_l: vec![Vec::new(); converted.len() - 1],
        n_total: converted[0],
        g_totals: converted[1..].to_vec(),
    };
    if masks.offset_encoded {
        crate::gain::remove_totals_offset(ctx, &mut node);
    }
    concealed_leaf(ctx, &node)
}
