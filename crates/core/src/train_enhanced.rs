//! Pivot enhanced protocol training (§5.2): the released model conceals
//! split thresholds and leaf labels.
//!
//! Differences from the basic protocol, per node:
//!
//! * only the winning `(i*, j*)` block of the best split is revealed;
//!   `⟨s*⟩` stays secret and is expanded into an encrypted one-hot `[λ]`;
//! * the winner privately selects its split-indicator column via Theorem 2
//!   (`[v] = V ⊗ [λ]`) and the encrypted threshold via a homomorphic dot
//!   product with its candidate-value vector;
//! * the mask update follows Eqn (10): `[α]` is converted to shares
//!   (Algorithm 2) and every client contributes `⟨α_j⟩ᵢ ⊗ [v_j]`, summed
//!   at the winner — `O(n)` threshold decryptions per node, the cost that
//!   separates Pivot-Enhanced from Pivot-Basic in Figures 4–5;
//! * leaf labels are converted share→ciphertext instead of being opened.

use crate::config::{Protocol, Scheduling};
use crate::conversion::{
    ciphers_to_shares, packed_ciphers_to_shares, packed_share_conversion, shares_to_ciphers,
};
use crate::gain::{
    best_split, best_split_batch, convert_stats, convert_stats_batch, leaf_label_share,
    leaf_label_shares_batch, node_shares_from_packed, prune_decision, prune_decisions_batch,
    reveal_block_only, reveal_blocks_batch, split_gains, split_gains_batch, NodeShares,
};
use crate::masks::{
    compute_label_masks, compute_packed_label_masks, initial_mask, plan_packed_labels, LabelMasks,
};
use crate::metrics::Stage;
use crate::model::{ConcealedNode, ConcealedTree};
use crate::party::PartyContext;
use crate::stats::{
    packed_pooled_statistics, pooled_statistics, EncryptedStats, LocalSplits, PackedStats,
    SplitLayout,
};
use pivot_bignum::BigUint;
use pivot_mpc::Share;
use pivot_paillier::{batch, vector, Ciphertext, SlotCodec};

/// Public offset added to fixed-point thresholds before encryption so the
/// PIR dot product only ever sees non-negative plaintexts (negative
/// encodings would wrap mod `N` and break the mod-`p` slack discipline).
pub fn threshold_offset_bits(ctx: &PartyContext<'_>) -> u32 {
    ctx.params.fixed.int_bits - 2
}

/// Audited magnitude bound (in bits) on an Eqn-10 mask plaintext: after a
/// masked-product update, `[α'] = Σ_m ⟨α⟩·[v]` where each `⟨α⟩ < p` and
/// the PIR-selected `[v]` plaintext is a `≤ b`-term sum of λ-ciphertexts
/// each carrying `< m·p` slack — worst case `m²·b·p²` (the quadratic
/// slack behind the enhanced keysize floor).
fn eqn10_alpha_bound_bits(ctx: &PartyContext<'_>, layout: &SplitLayout) -> u32 {
    let m = BigUint::from_u64(ctx.parties() as u64);
    let p = BigUint::from_u64(pivot_mpc::MODULUS);
    let b = layout
        .counts
        .iter()
        .flat_map(|per_feature| per_feature.iter())
        .copied()
        .max()
        .unwrap_or(1)
        .max(1);
    let worst = &(&(&m * &m) * &BigUint::from_u64(b as u64)) * &(&p * &p);
    worst.bits()
}

/// Train a single concealed decision tree (enhanced protocol).
pub fn train(ctx: &mut PartyContext<'_>) -> ConcealedTree {
    assert_eq!(
        ctx.params.protocol,
        Protocol::Enhanced,
        "enhanced training requires Protocol::Enhanced parameters"
    );
    assert!(
        ctx.params.keysize >= 192,
        "enhanced protocol needs keysize ≥ 192 (Eqn-10 slack headroom)"
    );
    let mask = vec![true; ctx.num_samples()];
    let (local, layout) = {
        let _setup = pivot_trace::phase_span("setup");
        let local = LocalSplits::precompute(ctx);
        let layout = SplitLayout::build(ctx.ep, &local.counts());
        (local, layout)
    };
    let alpha = initial_mask(ctx, &mask);
    let codec = ctx.packing_codec();
    if ctx.params.scheduling == Scheduling::Pipelined {
        return train_level_wise_pipelined(ctx, &local, &layout, alpha, codec.as_ref());
    }
    if let Some(codec) = codec {
        return train_level_wise(ctx, &local, &layout, alpha, &codec);
    }
    let mut nodes = Vec::new();
    let root = build_node(ctx, &local, &layout, alpha, 0, &mut nodes);
    ConcealedTree {
        nodes,
        root,
        task: ctx.current_task(),
    }
}

/// Packed enhanced training, level-wise: one Algorithm-2 conversion per
/// tree depth covers every sibling's packed statistics (see
/// `train_basic::train_level_wise` for the scheduling rationale). The
/// private split selection, Theorem-2 PIR and Eqn-10 updates stay per
/// node and scalar — their ciphertexts are consumed element-wise.
fn train_level_wise(
    ctx: &mut PartyContext<'_>,
    local: &LocalSplits,
    layout: &SplitLayout,
    root_alpha: Vec<Ciphertext>,
    codec: &SlotCodec,
) -> ConcealedTree {
    let task = ctx.current_task();
    // The packed label multipliers depend only on labels/task/codec —
    // built once here, reused by every node at every level.
    let label_plan = plan_packed_labels(ctx, codec);
    let mut nodes: Vec<Option<ConcealedNode>> = vec![None];
    let mut frontier: Vec<(usize, Vec<Ciphertext>)> = vec![(0, root_alpha)];
    let mut depth = 0;
    while !frontier.is_empty() {
        // Depth-forced leaf levels only need node totals; the scalar
        // conversion handles the Eqn-10 slack without a refresh, and a
        // handful of values per node leaves packing nothing to amortize.
        if depth >= ctx.params.tree.max_depth || layout.total() == 0 {
            for (slot, alpha) in frontier.drain(..) {
                let _leaf = pivot_trace::phase_span("leaf");
                let stats_start = ctx.ep.stats().bytes_sent();
                let masks = compute_label_masks(ctx, &alpha, true);
                let enc_value = concealed_leaf_from_totals(ctx, &alpha, &masks, stats_start);
                nodes[slot] = Some(ConcealedNode::Leaf { enc_value });
            }
            break;
        }
        let _level = pivot_trace::span_fn(|| format!("level {depth}"));
        let stats_start = ctx.ep.stats().bytes_sent();

        // Eqn-10 masks carry *quadratic* mod-p slack (shares scaled by
        // slack-carrying PIR ciphertexts reach ~m²·b·p² — the reason for
        // the enhanced keysize floor). The slot-width audit budgets only
        // the linear `m·p` bound, so packed levels first linearize the
        // slack: one batched share round-trip re-encrypts every frontier
        // mask as a plain share sum. Values are untouched mod p, so the
        // trained tree is unaffected.
        if depth > 0 {
            let _conv = pivot_trace::phase_span("conversion");
            let lens: Vec<usize> = frontier.iter().map(|(_, a)| a.len()).collect();
            let flat: Vec<Ciphertext> = frontier
                .iter()
                .flat_map(|(_, a)| a.iter().cloned())
                .collect();
            let shares = ciphers_to_shares(ctx, &flat);
            let fresh = shares_to_ciphers(ctx, &shares);
            let mut rest = fresh.as_slice();
            for ((_, alpha), len) in frontier.iter_mut().zip(lens) {
                *alpha = rest[..len].to_vec();
                rest = &rest[len..];
            }
        }

        let per_node: Vec<PackedStats> = {
            let _stats = pivot_trace::phase_span("stats");
            let labels: Vec<_> = frontier
                .iter()
                .map(|(_, alpha)| compute_packed_label_masks(ctx, alpha, &label_plan))
                .collect();
            labels
                .iter()
                .map(|packed_labels| {
                    packed_pooled_statistics(ctx, layout, local, packed_labels, codec)
                })
                .collect()
        };

        let (slot_shares, spans) = {
            let _conv = pivot_trace::phase_span("conversion");
            let (cts, used, spans) = crate::stats::conversion_batch(&per_node);
            let started = std::time::Instant::now();
            let slot_shares = packed_ciphers_to_shares(ctx, codec, &cts, &used);
            ctx.metrics
                .add_time(Stage::MpcComputation, started.elapsed());
            (slot_shares, spans)
        };
        ctx.metrics
            .add_stats_bytes(ctx.ep.stats().bytes_sent() - stats_start);

        let mut next = Vec::new();
        for (i, ((slot, alpha), ps)) in frontier.drain(..).zip(&per_node).enumerate() {
            let _node = pivot_trace::span_fn(|| format!("node d{depth} #{i}"));
            let span = &slot_shares[spans[i]..spans[i] + ps.conversion_len()];
            let (pruned, shares) = {
                let _gain = pivot_trace::phase_span("gain");
                let shares = node_shares_from_packed(ctx, layout, ps, span);
                // No purity check: it would leak a concealed-label bit.
                (prune_decision(ctx, &shares, false), shares)
            };
            if pruned {
                let _leaf = pivot_trace::phase_span("leaf");
                let enc_value = concealed_leaf(ctx, &shares);
                nodes[slot] = Some(ConcealedNode::Leaf { enc_value });
                continue;
            }

            let (winner, feature_global, enc_threshold, alpha_l, alpha_r) =
                select_and_update(ctx, local, layout, &shares, alpha);

            let left_slot = nodes.len();
            nodes.push(None);
            let right_slot = nodes.len();
            nodes.push(None);
            nodes[slot] = Some(ConcealedNode::Internal {
                client: winner,
                feature_global,
                enc_threshold,
                left: left_slot,
                right: right_slot,
            });
            next.push((left_slot, alpha_l));
            next.push((right_slot, alpha_r));
        }
        frontier = next;
        depth += 1;
    }
    let nodes: Vec<ConcealedNode> = nodes
        .into_iter()
        .map(|n| n.expect("every allocated node is resolved"))
        .collect();
    // Renumber breadth-first slots into the recursive builder's
    // post-order so the released model matches the unpacked path's arena.
    let (nodes, root) = renumber_postorder(&nodes, 0);
    ConcealedTree { nodes, root, task }
}

/// Rewrite a concealed arena into post-order (the recursive layout).
fn renumber_postorder(nodes: &[ConcealedNode], root: usize) -> (Vec<ConcealedNode>, usize) {
    fn visit(nodes: &[ConcealedNode], id: usize, out: &mut Vec<ConcealedNode>) -> usize {
        match &nodes[id] {
            ConcealedNode::Leaf { enc_value } => out.push(ConcealedNode::Leaf {
                enc_value: enc_value.clone(),
            }),
            ConcealedNode::Internal {
                client,
                feature_global,
                enc_threshold,
                left,
                right,
            } => {
                let l = visit(nodes, *left, out);
                let r = visit(nodes, *right, out);
                out.push(ConcealedNode::Internal {
                    client: *client,
                    feature_global: *feature_global,
                    enc_threshold: enc_threshold.clone(),
                    left: l,
                    right: r,
                });
            }
        }
        out.len() - 1
    }
    let mut out = Vec::with_capacity(nodes.len());
    let root = visit(nodes, root, &mut out);
    (out, root)
}

/// Pipelined enhanced training: the whole frontier advances through
/// batched stages — one prune unit, one gain pipeline, one lockstep
/// argmax, one batched block reveal, one one-hot batch, one `[λ]`
/// re-encryption, and one Eqn-10 share conversion per level. Per-winner
/// PIR selection and masked products stay per node (their broadcasts and
/// gathers coalesce at the transport layer). The released concealed tree
/// matches the sequential schedule's.
fn train_level_wise_pipelined(
    ctx: &mut PartyContext<'_>,
    local: &LocalSplits,
    layout: &SplitLayout,
    root_alpha: Vec<Ciphertext>,
    codec: Option<&SlotCodec>,
) -> ConcealedTree {
    let task = ctx.current_task();
    let label_plan = codec.map(|c| plan_packed_labels(ctx, c));
    let mut nodes: Vec<Option<ConcealedNode>> = vec![None];
    let mut frontier: Vec<(usize, Vec<Ciphertext>)> = vec![(0, root_alpha)];
    let mut depth = 0;
    while !frontier.is_empty() {
        if depth >= ctx.params.tree.max_depth || layout.total() == 0 {
            forced_concealed_leaves_batch(ctx, &mut nodes, std::mem::take(&mut frontier));
            break;
        }
        let _level = pivot_trace::span_fn(|| format!("level {depth}"));
        let stats_start = ctx.ep.stats().bytes_sent();

        // Packed levels linearize the quadratic Eqn-10 slack first (see
        // `train_level_wise`); the scalar conversion needs no refresh.
        if codec.is_some() && depth > 0 {
            let _conv = pivot_trace::phase_span("conversion");
            let lens: Vec<usize> = frontier.iter().map(|(_, a)| a.len()).collect();
            let flat: Vec<Ciphertext> = frontier
                .iter()
                .flat_map(|(_, a)| a.iter().cloned())
                .collect();
            let shares = ciphers_to_shares(ctx, &flat);
            let fresh = shares_to_ciphers(ctx, &shares);
            let mut rest = fresh.as_slice();
            for ((_, alpha), len) in frontier.iter_mut().zip(lens) {
                *alpha = rest[..len].to_vec();
                rest = &rest[len..];
            }
        }

        let node_shares: Vec<NodeShares> = if let (Some(codec), Some(plan)) = (codec, &label_plan) {
            let per_node: Vec<PackedStats> = {
                let _stats = pivot_trace::phase_span("stats");
                let labels: Vec<_> = frontier
                    .iter()
                    .map(|(_, alpha)| compute_packed_label_masks(ctx, alpha, plan))
                    .collect();
                labels
                    .iter()
                    .map(|packed| packed_pooled_statistics(ctx, layout, local, packed, codec))
                    .collect()
            };
            let _conv = pivot_trace::phase_span("conversion");
            let (cts, used, spans) = crate::stats::conversion_batch(&per_node);
            let started = std::time::Instant::now();
            let slot_shares = packed_ciphers_to_shares(ctx, codec, &cts, &used);
            ctx.metrics
                .add_time(Stage::MpcComputation, started.elapsed());
            per_node
                .iter()
                .enumerate()
                .map(|(i, ps)| {
                    let span = &slot_shares[spans[i]..spans[i] + ps.conversion_len()];
                    node_shares_from_packed(ctx, layout, ps, span)
                })
                .collect()
        } else {
            let encs: Vec<EncryptedStats> = {
                let _stats = pivot_trace::phase_span("stats");
                frontier
                    .iter()
                    .map(|(_, alpha)| {
                        let masks = compute_label_masks(ctx, alpha, true);
                        pooled_statistics(ctx, layout, local, alpha, &masks)
                    })
                    .collect()
            };
            let _conv = pivot_trace::phase_span("conversion");
            let refs: Vec<&EncryptedStats> = encs.iter().collect();
            convert_stats_batch(ctx, layout, &refs)
        };
        ctx.metrics
            .add_stats_bytes(ctx.ep.stats().bytes_sent() - stats_start);

        // One prune unit (no purity check: concealed labels).
        let pruned = {
            let _gain = pivot_trace::phase_span("gain");
            let refs: Vec<&NodeShares> = node_shares.iter().collect();
            prune_decisions_batch(ctx, &refs, false)
        };

        // Pruned nodes: one leaf-label batch, ONE share→cipher conversion.
        {
            let _leaf = pivot_trace::phase_span("leaf");
            let idxs: Vec<usize> = (0..frontier.len()).filter(|&i| pruned[i]).collect();
            if !idxs.is_empty() {
                let sel: Vec<&NodeShares> = idxs.iter().map(|&i| &node_shares[i]).collect();
                let shares = leaf_label_shares_batch(ctx, &sel);
                let encs = shares_to_ciphers(ctx, &shares);
                for (&i, enc_value) in idxs.iter().zip(encs) {
                    nodes[frontier[i].0] = Some(ConcealedNode::Leaf { enc_value });
                }
            }
        }

        // Survivors: gains + lockstep argmax.
        let live: Vec<usize> = (0..frontier.len()).filter(|&i| !pruned[i]).collect();
        let best = {
            let _gain = pivot_trace::phase_span("gain");
            let sel: Vec<&NodeShares> = live.iter().map(|&i| &node_shares[i]).collect();
            let gains = split_gains_batch(ctx, &sel);
            best_split_batch(ctx, &gains)
        };

        // Batched block reveal + one-hot expansion + ONE [λ] re-encryption.
        let (blocks, lambda_encs) = {
            let _reveal = pivot_trace::phase_span("split_reveal");
            let idxs: Vec<Share> = best.iter().map(|&(idx, _)| idx).collect();
            let blocks = if idxs.is_empty() {
                Vec::new()
            } else {
                reveal_blocks_batch(ctx, layout, &idxs)
            };
            let items: Vec<(Share, usize)> = blocks
                .iter()
                .map(|&(w, f, s)| (s, layout.counts[w][f]))
                .collect();
            let lambdas = ctx
                .metrics
                .time(Stage::MpcComputation, || ctx.engine.onehot_many(&items));
            let lens: Vec<usize> = lambdas.iter().map(|l| l.len()).collect();
            let flat: Vec<Share> = lambdas.into_iter().flatten().collect();
            let fresh = shares_to_ciphers(ctx, &flat);
            let mut lambda_encs = Vec::with_capacity(lens.len());
            let mut rest = fresh.as_slice();
            for len in lens {
                lambda_encs.push(rest[..len].to_vec());
                rest = &rest[len..];
            }
            (blocks, lambda_encs)
        };

        // Per-winner PIR selection (coalesced broadcast frames).
        let headers: Vec<(Vec<Ciphertext>, Vec<Ciphertext>, Ciphertext, usize)> = {
            let _reveal = pivot_trace::phase_span("split_reveal");
            blocks
                .iter()
                .zip(&lambda_encs)
                .map(|(&(winner, local_feature, _), lambda_enc)| {
                    let n_splits = layout.counts[winner][local_feature];
                    pir_select(ctx, local, winner, local_feature, n_splits, lambda_enc)
                })
                .collect()
        };

        // Eqn-10: ONE share conversion for every survivor's mask, then
        // per-node masked products (both sides share one gather round).
        let _update = pivot_trace::phase_span("update");
        let live_items: Vec<(usize, Vec<Ciphertext>)> = frontier
            .drain(..)
            .enumerate()
            .filter(|(i, _)| !pruned[*i])
            .map(|(_, item)| item)
            .collect();
        let lens: Vec<usize> = live_items.iter().map(|(_, a)| a.len()).collect();
        let flat: Vec<Ciphertext> = live_items
            .iter()
            .flat_map(|(_, a)| a.iter().cloned())
            .collect();
        let all_shares = if flat.is_empty() {
            Vec::new()
        } else {
            // Packed under the Eqn-10 slack bound: only pays off at large
            // keysizes (the quadratic slack needs ~2·61-bit slots), and
            // degrades to the scalar conversion otherwise.
            packed_share_conversion(ctx, &flat, eqn10_alpha_bound_bits(ctx, layout))
        };
        let mut next = Vec::new();
        let mut at = 0;
        for (t, &(slot, _)) in live_items.iter().enumerate() {
            let alpha_shares = &all_shares[at..at + lens[t]];
            at += lens[t];
            let (winner, _, _) = blocks[t];
            let (v_l, v_r, enc_threshold, feature_global) = headers[t].clone();
            let (alpha_l, alpha_r) = masked_product_pair(ctx, alpha_shares, &v_l, &v_r, winner);
            let left_slot = nodes.len();
            nodes.push(None);
            let right_slot = nodes.len();
            nodes.push(None);
            nodes[slot] = Some(ConcealedNode::Internal {
                client: winner,
                feature_global,
                enc_threshold,
                left: left_slot,
                right: right_slot,
            });
            next.push((left_slot, alpha_l));
            next.push((right_slot, alpha_r));
        }
        drop(_update);
        frontier = next;
        depth += 1;
        // Latency-hiding refill window between levels: the next level
        // drains a whole burst of preprocessing at once, so top the pool
        // up synchronously to the burst shape at the barrier, scaled by
        // the frontier growth.
        if !frontier.is_empty() {
            ctx.engine
                .dealer_refill_blocking(frontier.len(), live_items.len().max(1));
            ctx.nonces.refill();
        }
        // Level barrier: identical depth/frontier state on every party,
        // so checkpoint ordinals agree across the mesh.
        ctx.level_barrier(depth as u64);
    }
    let nodes: Vec<ConcealedNode> = nodes
        .into_iter()
        .map(|n| n.expect("every allocated node is resolved"))
        .collect();
    let (nodes, root) = renumber_postorder(&nodes, 0);
    ConcealedTree { nodes, root, task }
}

/// The per-node tail of enhanced split selection, shared by the recursive
/// and level-wise schedules: secure argmax, block-only reveal, the §5.2
/// private split selection (one-hot `[λ]`, Theorem-2 PIR, encrypted
/// threshold) and the Eqn-10 mask update. Returns the public node header
/// and the children's masks.
fn select_and_update(
    ctx: &mut PartyContext<'_>,
    local: &LocalSplits,
    layout: &SplitLayout,
    shares: &NodeShares,
    alpha: Vec<Ciphertext>,
) -> (usize, usize, Ciphertext, Vec<Ciphertext>, Vec<Ciphertext>) {
    let best_idx = {
        let _gain = pivot_trace::phase_span("gain");
        let gains = split_gains(ctx, shares);
        let (best_idx, _gain_share) = best_split(ctx, &gains);
        best_idx
    };
    let _reveal = pivot_trace::phase_span("split_reveal");
    // Reveal only the (client, feature) block; ⟨s*⟩ stays secret.
    let (winner, local_feature, s_share) = reveal_block_only(ctx, layout, best_idx);
    let n_splits = layout.counts[winner][local_feature];

    // ⟨λ⟩ one-hot of s*, then encrypted [λ] (§5.2 private split selection).
    let lambda_shares = ctx.metrics.time(Stage::MpcComputation, || {
        ctx.engine.onehot_vec(s_share, n_splits)
    });
    let lambda_enc = shares_to_ciphers(ctx, &lambda_shares);

    // Winner: PIR-select [v_l], [v_r] and the encrypted threshold.
    let (v_l, v_r, enc_threshold, feature_global) =
        pir_select(ctx, local, winner, local_feature, n_splits, &lambda_enc);

    drop(_reveal);
    // Eqn (10): encrypted-mask updating through share conversion.
    let _update = pivot_trace::phase_span("update");
    let alpha_shares = ciphers_to_shares(ctx, &alpha);
    let alpha_l = masked_product(ctx, &alpha_shares, &v_l, winner);
    let alpha_r = masked_product(ctx, &alpha_shares, &v_r, winner);
    drop(alpha);
    (winner, feature_global, enc_threshold, alpha_l, alpha_r)
}

fn build_node(
    ctx: &mut PartyContext<'_>,
    local: &LocalSplits,
    layout: &SplitLayout,
    alpha: Vec<Ciphertext>,
    depth: usize,
    nodes: &mut Vec<ConcealedNode>,
) -> usize {
    let _node = pivot_trace::span_fn(|| format!("node d{depth}"));
    let stats_start = ctx.ep.stats().bytes_sent();
    let masks = {
        let _stats = pivot_trace::phase_span("stats");
        compute_label_masks(ctx, &alpha, true)
    };

    let force_leaf = depth >= ctx.params.tree.max_depth || layout.total() == 0;
    if force_leaf {
        let _leaf = pivot_trace::phase_span("leaf");
        let enc_value = concealed_leaf_from_totals(ctx, &alpha, &masks, stats_start);
        nodes.push(ConcealedNode::Leaf { enc_value });
        return nodes.len() - 1;
    }

    let enc = {
        let _stats = pivot_trace::phase_span("stats");
        pooled_statistics(ctx, layout, local, &alpha, &masks)
    };
    let shares = {
        let _conv = pivot_trace::phase_span("conversion");
        convert_stats(ctx, layout, &enc)
    };
    ctx.metrics
        .add_stats_bytes(ctx.ep.stats().bytes_sent() - stats_start);

    // No purity check: it would leak a bit about the concealed labels.
    let pruned = {
        let _gain = pivot_trace::phase_span("gain");
        prune_decision(ctx, &shares, false)
    };
    if pruned {
        let _leaf = pivot_trace::phase_span("leaf");
        let enc_value = concealed_leaf(ctx, &shares);
        nodes.push(ConcealedNode::Leaf { enc_value });
        return nodes.len() - 1;
    }

    let (winner, feature_global, enc_threshold, alpha_l, alpha_r) =
        select_and_update(ctx, local, layout, &shares, alpha);

    let left = build_node(ctx, local, layout, alpha_l, depth + 1, nodes);
    let right = build_node(ctx, local, layout, alpha_r, depth + 1, nodes);
    nodes.push(ConcealedNode::Internal {
        client: winner,
        feature_global,
        enc_threshold,
        left,
        right,
    });
    nodes.len() - 1
}

/// §5.2 private split selection at the winner: Theorem-2 PIR selection of
/// the split-indicator columns `[v_l]`, `[v_r]` and the encrypted
/// threshold, broadcast to everyone (shared by the sequential and
/// pipelined schedules — byte-identical transcript).
fn pir_select(
    ctx: &mut PartyContext<'_>,
    local: &LocalSplits,
    winner: usize,
    local_feature: usize,
    n_splits: usize,
    lambda_enc: &[Ciphertext],
) -> (Vec<Ciphertext>, Vec<Ciphertext>, Ciphertext, usize) {
    ctx.metrics.time(Stage::ModelUpdate, || {
        if ctx.id() == winner {
            let inds = &local.indicators[local_feature];
            let n = ctx.view.num_samples();
            // Theorem-2 PIR selection per sample: independent dot
            // products, batched over the worker pool.
            let samples: Vec<usize> = (0..n).collect();
            let pairs: Vec<(Ciphertext, Ciphertext)> =
                pivot_runtime::global().map(ctx.crypto_threads(), &samples, |&j| {
                    let row: Vec<bool> = (0..n_splits).map(|t| inds[t][j]).collect();
                    let comp: Vec<bool> = row.iter().map(|&b| !b).collect();
                    (
                        vector::dot_binary(&ctx.pk, lambda_enc, &row),
                        vector::dot_binary(&ctx.pk, lambda_enc, &comp),
                    )
                });
            let (v_l, v_r): (Vec<Ciphertext>, Vec<Ciphertext>) = pairs.into_iter().unzip();
            ctx.metrics.add_ciphertext_ops((2 * n * n_splits) as u64);
            let enc_vals: Vec<BigUint> = local.candidates[local_feature]
                .thresholds
                .iter()
                .map(|&t| encode_threshold(ctx, t))
                .collect();
            let enc_threshold = vector::dot_plain(&ctx.pk, lambda_enc, &enc_vals);
            let feature_global = ctx.view.feature_indices[local_feature];
            ctx.ep.broadcast(&v_l);
            ctx.ep.broadcast(&v_r);
            ctx.ep.broadcast(&enc_threshold);
            ctx.ep.broadcast(&feature_global);
            (v_l, v_r, enc_threshold, feature_global)
        } else {
            let v_l: Vec<Ciphertext> = ctx.ep.recv(winner);
            let v_r: Vec<Ciphertext> = ctx.ep.recv(winner);
            let enc_threshold: Ciphertext = ctx.ep.recv(winner);
            let feature_global: usize = ctx.ep.recv(winner);
            (v_l, v_r, enc_threshold, feature_global)
        }
    })
}

/// `[α'_j] = Σᵢ [⟨α_j⟩ᵢ · v_j]` — every client scales the encrypted split
/// indicator by its own share; the winner aggregates and broadcasts.
fn masked_product(
    ctx: &mut PartyContext<'_>,
    alpha_shares: &[Share],
    v: &[Ciphertext],
    winner: usize,
) -> Vec<Ciphertext> {
    ctx.metrics.time(Stage::ModelUpdate, || {
        let threads = ctx.crypto_threads();
        let share_values: Vec<BigUint> = alpha_shares
            .iter()
            .map(|s| BigUint::from_u64(s.0.value()))
            .collect();
        let my_terms = batch::mul_plain_batch(&ctx.pk, v, &share_values, threads);
        ctx.metrics.add_ciphertext_ops(my_terms.len() as u64);
        // The gather wait is CPU-idle: top up the offline pools.
        ctx.nonces.refill();
        ctx.engine.dealer_refill();
        let gathered = ctx.ep.gather(winner, &my_terms);
        if ctx.id() == winner {
            let parts = gathered.expect("winner gathers");
            let n = alpha_shares.len();
            let indices: Vec<usize> = (0..n).collect();
            let sums: Vec<Ciphertext> = pivot_runtime::global().map(threads, &indices, |&j| {
                let mut acc = parts[0][j].clone();
                for part in parts.iter().skip(1) {
                    acc = ctx.pk.add(&acc, &part[j]);
                }
                acc
            });
            ctx.metrics.add_ciphertext_ops((n * ctx.parties()) as u64);
            ctx.ep.broadcast(&sums);
            sums
        } else {
            ctx.ep.recv(winner)
        }
    })
}

/// Both Eqn-10 masked products of one node in a single gather round: the
/// left and right indicator vectors concatenate, so the winner aggregates
/// and broadcasts once. Values match two [`masked_product`] calls.
fn masked_product_pair(
    ctx: &mut PartyContext<'_>,
    alpha_shares: &[Share],
    v_l: &[Ciphertext],
    v_r: &[Ciphertext],
    winner: usize,
) -> (Vec<Ciphertext>, Vec<Ciphertext>) {
    ctx.metrics.time(Stage::ModelUpdate, || {
        let threads = ctx.crypto_threads();
        let n = alpha_shares.len();
        let share_values: Vec<BigUint> = alpha_shares
            .iter()
            .map(|s| BigUint::from_u64(s.0.value()))
            .collect();
        let v: Vec<Ciphertext> = v_l.iter().chain(v_r.iter()).cloned().collect();
        let doubled: Vec<BigUint> = share_values
            .iter()
            .chain(share_values.iter())
            .cloned()
            .collect();
        let my_terms = batch::mul_plain_batch(&ctx.pk, &v, &doubled, threads);
        ctx.metrics.add_ciphertext_ops(my_terms.len() as u64);
        // The gather wait is CPU-idle: top up the offline pools.
        ctx.nonces.refill();
        ctx.engine.dealer_refill();
        let gathered = ctx.ep.gather(winner, &my_terms);
        let sums = if ctx.id() == winner {
            let parts = gathered.expect("winner gathers");
            let indices: Vec<usize> = (0..2 * n).collect();
            let sums: Vec<Ciphertext> = pivot_runtime::global().map(threads, &indices, |&j| {
                let mut acc = parts[0][j].clone();
                for part in parts.iter().skip(1) {
                    acc = ctx.pk.add(&acc, &part[j]);
                }
                acc
            });
            ctx.metrics
                .add_ciphertext_ops((2 * n * ctx.parties()) as u64);
            ctx.ep.broadcast(&sums);
            sums
        } else {
            ctx.ep.recv(winner)
        };
        let (l, r) = sums.split_at(n);
        (l.to_vec(), r.to_vec())
    })
}

/// Depth-forced concealed leaf level: every node's totals convert in one
/// Algorithm-2 batch and every leaf label re-encrypts in one
/// share→cipher conversion.
fn forced_concealed_leaves_batch(
    ctx: &mut PartyContext<'_>,
    nodes: &mut [Option<ConcealedNode>],
    frontier: Vec<(usize, Vec<Ciphertext>)>,
) {
    let _leaf = pivot_trace::phase_span("leaf");
    let stats_start = ctx.ep.stats().bytes_sent();
    let mut flats: Vec<Vec<Ciphertext>> = Vec::with_capacity(frontier.len());
    let mut offsets: Vec<bool> = Vec::with_capacity(frontier.len());
    for (_, alpha) in &frontier {
        let masks = compute_label_masks(ctx, alpha, true);
        let all = vec![true; alpha.len()];
        let mut flat = vec![vector::dot_binary(&ctx.pk, alpha, &all)];
        for gamma in &masks.gammas {
            flat.push(vector::dot_binary(&ctx.pk, gamma, &all));
        }
        ctx.metrics
            .add_ciphertext_ops((alpha.len() * flat.len()) as u64);
        flats.push(flat);
        offsets.push(masks.offset_encoded);
    }
    let all_flat: Vec<Ciphertext> = flats.iter().flatten().cloned().collect();
    let shares = ciphers_to_shares(ctx, &all_flat);
    ctx.metrics
        .add_stats_bytes(ctx.ep.stats().bytes_sent() - stats_start);

    let mut totals: Vec<NodeShares> = Vec::with_capacity(frontier.len());
    let mut at = 0;
    for (flat, &offset_encoded) in flats.iter().zip(&offsets) {
        let chunk = &shares[at..at + flat.len()];
        at += flat.len();
        let mut node = NodeShares {
            n_l: Vec::new(),
            g_l: vec![Vec::new(); flat.len() - 1],
            n_total: chunk[0],
            g_totals: chunk[1..].to_vec(),
        };
        if offset_encoded {
            crate::gain::remove_totals_offset(ctx, &mut node);
        }
        totals.push(node);
    }
    let refs: Vec<&NodeShares> = totals.iter().collect();
    let labels = leaf_label_shares_batch(ctx, &refs);
    let encs = shares_to_ciphers(ctx, &labels);
    for ((slot, _), enc_value) in frontier.iter().zip(encs) {
        nodes[*slot] = Some(ConcealedNode::Leaf { enc_value });
    }
}

/// Encode a plaintext threshold for PIR selection: fixed-point plus the
/// public positivity offset.
fn encode_threshold(ctx: &PartyContext<'_>, threshold: f64) -> BigUint {
    let f = ctx.params.fixed.frac_bits;
    let off_bits = threshold_offset_bits(ctx);
    let scaled = (threshold * (1u64 << f) as f64).round();
    assert!(
        scaled.abs() < (1u64 << off_bits) as f64,
        "threshold {threshold} overflows the fixed-point layout"
    );
    let with_offset = scaled + (1u64 << off_bits) as f64;
    BigUint::from_u64(with_offset as u64)
}

/// Concealed leaf from full node statistics.
fn concealed_leaf(ctx: &mut PartyContext<'_>, shares: &NodeShares) -> Ciphertext {
    let label = leaf_label_share(ctx, shares);
    shares_to_ciphers(ctx, &[label]).remove(0)
}

/// Concealed leaf when the depth bound forces one (totals only).
fn concealed_leaf_from_totals(
    ctx: &mut PartyContext<'_>,
    alpha: &[Ciphertext],
    masks: &LabelMasks,
    stats_start: u64,
) -> Ciphertext {
    let all = vec![true; alpha.len()];
    let node_total = vector::dot_binary(&ctx.pk, alpha, &all);
    let mut flat = vec![node_total];
    for gamma in &masks.gammas {
        flat.push(vector::dot_binary(&ctx.pk, gamma, &all));
    }
    ctx.metrics
        .add_ciphertext_ops((alpha.len() * flat.len()) as u64);
    let converted = ciphers_to_shares(ctx, &flat);
    ctx.metrics
        .add_stats_bytes(ctx.ep.stats().bytes_sent() - stats_start);
    let mut node = NodeShares {
        n_l: Vec::new(),
        g_l: vec![Vec::new(); converted.len() - 1],
        n_total: converted[0],
        g_totals: converted[1..].to_vec(),
    };
    if masks.offset_encoded {
        crate::gain::remove_totals_offset(ctx, &mut node);
    }
    concealed_leaf(ctx, &node)
}
