//! Evaluation baselines (§8.1):
//!
//! * [`spdz_dt`] — the pure-MPC strawman: every feature, threshold and
//!   label is secret-shared and the whole of CART runs inside SPDZ. Its
//!   per-node cost is `O(n·c·d·b)` secure multiplications plus `O(n·d·b)`
//!   secure comparisons once, versus Pivot's `O(c·d·b)` conversions —
//!   that gap is Figure 5.
//! * [`npd_dt`] — the non-private distributed trainer: plaintext labels
//!   broadcast, plaintext statistics exchanged. The floor of Figures 4g/5.

pub mod npd_dt;
pub mod spdz_dt;
