//! SPDZ-DT: decision-tree training entirely inside MPC (the paper's
//! baseline, §8.1). Features, candidate thresholds, and labels are all
//! secret-shared; split indicators are computed with secure comparisons;
//! node statistics with secure multiplications. The released model is the
//! same plaintext tree Pivot-Basic produces.

use crate::gain::{best_split, prune_decision, reveal_identifier, split_gains, NodeShares};
use crate::party::PartyContext;
use crate::stats::{LocalSplits, SplitLayout};
use pivot_data::Task;
use pivot_mpc::{Fp, Share};
use pivot_trees::{DecisionTree, Node};

/// Train a decision tree with the pure-MPC baseline.
pub fn train(ctx: &mut PartyContext<'_>) -> DecisionTree {
    let n = ctx.num_samples();
    let local = LocalSplits::precompute(ctx);
    let layout = SplitLayout::build(ctx.ep, &local.counts());
    let total_splits = layout.total();
    let party = ctx.id();
    let f = ctx.params.fixed.frac_bits;

    // 1. Share all feature columns and thresholds, then evaluate every
    //    (split, sample) indicator with one batched secure comparison —
    //    the O(n·d·b) comparison bill Pivot avoids.
    let mut indicator_cols: Vec<Vec<Share>> = Vec::with_capacity(total_splits);
    {
        // Owners provide, per local split, the feature column followed by
        // the threshold (broadcast threshold minus value ≥ 0 ⇒ left).
        let mut diffs: Vec<Share> = Vec::with_capacity(total_splits * n);
        for owner in 0..ctx.parties() {
            let n_owner_splits: usize = layout.counts[owner].iter().sum();
            if n_owner_splits == 0 {
                continue;
            }
            let values: Option<Vec<Fp>> = (ctx.id() == owner).then(|| {
                let mut vals = Vec::with_capacity(n_owner_splits * (n + 1));
                for (feat, cand) in local.candidates.iter().enumerate() {
                    let column = ctx.view.column(feat);
                    for &threshold in &cand.thresholds {
                        for &x in &column {
                            vals.push(encode_fx(x, f));
                        }
                        vals.push(encode_fx(threshold, f));
                    }
                }
                vals
            });
            let shared = ctx.engine.share_input(owner, values.as_deref());
            for split in 0..n_owner_splits {
                let base = split * (n + 1);
                let threshold = shared[base + n];
                for i in 0..n {
                    diffs.push(threshold - shared[base + i]);
                }
            }
        }
        // ind = 1[x ≤ τ] = 1 − 1[τ − x < 0].
        let neg = ctx.engine.ltz_vec(&diffs);
        for split in 0..total_splits {
            let col: Vec<Share> = (0..n)
                .map(|i| Share::from_public(party, Fp::ONE) - neg[split * n + i])
                .collect();
            indicator_cols.push(col);
        }
    }

    // 2. Share the label structure: one-hot per class, or (y, y²) moments.
    let label_rows: Vec<Vec<Share>> = share_label_rows(ctx);

    // 3. Recursive CART with a shared node mask.
    let root_mask: Vec<Share> = (0..n).map(|_| Share::from_public(party, Fp::ONE)).collect();
    let mut nodes = Vec::new();
    let root = build_node(
        ctx,
        &local,
        &layout,
        &indicator_cols,
        &label_rows,
        root_mask,
        0,
        &mut nodes,
    );
    DecisionTree::new(nodes, root, ctx.current_task())
}

fn encode_fx(x: f64, f: u32) -> Fp {
    Fp::from_i64((x * (1u64 << f) as f64).round() as i64)
}

/// Super client shares per-label-vector rows: classification one-hot
/// indicators (integer-valued), regression `y`/`y²` (fixed-point).
fn share_label_rows(ctx: &mut PartyContext<'_>) -> Vec<Vec<Share>> {
    let n = ctx.num_samples();
    let rows = match ctx.current_task() {
        Task::Classification { classes } => classes,
        Task::Regression => 2,
    };
    let values: Option<Vec<Fp>> = ctx.is_super_client().then(|| {
        let labels = ctx.view.labels.as_ref().expect("super client labels");
        let mut vals = Vec::with_capacity(rows * n);
        match ctx.view.task {
            Task::Classification { classes } => {
                for k in 0..classes {
                    for &y in labels {
                        vals.push(Fp::new(u64::from(y as usize == k)));
                    }
                }
            }
            Task::Regression => {
                let cfg = ctx.params.fixed;
                for &y in labels {
                    vals.push(cfg.encode(y));
                }
                for &y in labels {
                    vals.push(cfg.encode(y * y));
                }
            }
        }
        vals
    });
    let flat = ctx.engine.share_input(ctx.super_client, values.as_deref());
    flat.chunks(n).map(|c| c.to_vec()).collect()
}

#[allow(clippy::too_many_arguments)]
fn build_node(
    ctx: &mut PartyContext<'_>,
    local: &LocalSplits,
    layout: &SplitLayout,
    indicators: &[Vec<Share>],
    label_rows: &[Vec<Share>],
    mask: Vec<Share>,
    depth: usize,
    nodes: &mut Vec<Node>,
) -> usize {
    let n = mask.len();
    let total_splits = layout.total();

    // Node totals: n̄ = Σ α, g_k = Σ α·β_k (one multiplication batch).
    let n_total = mask.iter().fold(Share::ZERO, |acc, &x| acc + x);
    let mut lhs = Vec::with_capacity(label_rows.len() * n);
    let mut rhs = Vec::with_capacity(label_rows.len() * n);
    for row in label_rows {
        for i in 0..n {
            lhs.push(mask[i]);
            rhs.push(row[i]);
        }
    }
    let masked_labels = ctx.engine.mul_vec(&lhs, &rhs);
    let g_totals: Vec<Share> = (0..label_rows.len())
        .map(|k| {
            masked_labels[k * n..(k + 1) * n]
                .iter()
                .fold(Share::ZERO, |acc, &x| acc + x)
        })
        .collect();

    let force_leaf = depth >= ctx.params.tree.max_depth || total_splits == 0;
    let node_shares_totals = NodeShares {
        n_l: Vec::new(),
        g_l: vec![Vec::new(); label_rows.len()],
        n_total,
        g_totals: g_totals.clone(),
    };
    if force_leaf {
        let value = open_leaf(ctx, &node_shares_totals);
        nodes.push(Node::Leaf { value });
        return nodes.len() - 1;
    }
    if prune_decision(ctx, &node_shares_totals, ctx.params.tree.stop_when_pure) {
        let value = open_leaf(ctx, &node_shares_totals);
        nodes.push(Node::Leaf { value });
        return nodes.len() - 1;
    }

    // Per-split left statistics: n_l = Σ α·ind, g_lk = Σ (α·β_k)·ind —
    // the O(n·S·(c+1)) multiplication bill.
    let mut lhs = Vec::with_capacity(total_splits * (1 + label_rows.len()) * n);
    let mut rhs = Vec::with_capacity(lhs.capacity());
    for ind in indicators {
        for i in 0..n {
            lhs.push(mask[i]);
            rhs.push(ind[i]);
        }
        for k in 0..label_rows.len() {
            for i in 0..n {
                lhs.push(masked_labels[k * n + i]);
                rhs.push(ind[i]);
            }
        }
    }
    let products = ctx.engine.mul_vec(&lhs, &rhs);
    let stride = (1 + label_rows.len()) * n;
    let mut n_l = Vec::with_capacity(total_splits);
    let mut g_l: Vec<Vec<Share>> = vec![Vec::with_capacity(total_splits); label_rows.len()];
    for split in 0..total_splits {
        let base = split * stride;
        n_l.push(
            products[base..base + n]
                .iter()
                .fold(Share::ZERO, |acc, &x| acc + x),
        );
        for (k, row) in g_l.iter_mut().enumerate() {
            let start = base + (k + 1) * n;
            row.push(
                products[start..start + n]
                    .iter()
                    .fold(Share::ZERO, |acc, &x| acc + x),
            );
        }
    }

    let node_shares = NodeShares {
        n_l,
        g_l,
        n_total: node_shares_totals.n_total,
        g_totals,
    };
    let gains = split_gains(ctx, &node_shares);
    let (best_idx, _) = best_split(ctx, &gains);
    let (winner, local_feature, split_idx) = reveal_identifier(ctx, layout, best_idx);
    let global = layout.global_index(winner, local_feature, split_idx);

    // The winner reveals the plaintext threshold (the model is public).
    let (feature_global, threshold) = if ctx.id() == winner {
        let feature_global = ctx.view.feature_indices[local_feature];
        let threshold = local.candidates[local_feature].thresholds[split_idx];
        ctx.ep.broadcast(&(feature_global, threshold));
        (feature_global, threshold)
    } else {
        ctx.ep.recv::<(usize, f64)>(winner)
    };

    // Mask update in MPC: α_l = α·ind_best, α_r = α − α_l.
    let left_mask = ctx.engine.mul_vec(&mask, &indicators[global]);
    let right_mask: Vec<Share> = mask.iter().zip(&left_mask).map(|(&a, &l)| a - l).collect();

    let left = build_node(
        ctx,
        local,
        layout,
        indicators,
        label_rows,
        left_mask,
        depth + 1,
        nodes,
    );
    let right = build_node(
        ctx,
        local,
        layout,
        indicators,
        label_rows,
        right_mask,
        depth + 1,
        nodes,
    );
    nodes.push(Node::Internal {
        feature: feature_global,
        threshold,
        left,
        right,
    });
    nodes.len() - 1
}

fn open_leaf(ctx: &mut PartyContext<'_>, shares: &NodeShares) -> f64 {
    let label = crate::gain::leaf_label_share(ctx, shares);
    let opened = ctx.engine.open(label);
    match ctx.current_task() {
        Task::Classification { .. } => opened.value() as f64,
        Task::Regression => ctx.params.fixed.decode(opened),
    }
}
