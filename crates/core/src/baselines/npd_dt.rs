//! NPD-DT: the non-private distributed baseline (§8.1). The super client
//! broadcasts plaintext labels; clients exchange plaintext split
//! statistics; everything else is ordinary distributed CART. It must
//! produce exactly the tree [`pivot_trees::train_tree`] produces — that
//! equality is a correctness oracle for the whole distributed machinery.

use crate::party::PartyContext;
use crate::stats::{LocalSplits, SplitLayout};
use pivot_data::Task;
use pivot_trees::{DecisionTree, Node};

/// Per-split plaintext statistics: `(n_l, per-label-row left sums)`.
type PlainStats = Vec<(f64, Vec<f64>)>;

/// Train the non-private distributed tree.
pub fn train(ctx: &mut PartyContext<'_>) -> DecisionTree {
    let local = LocalSplits::precompute(ctx);
    let layout = SplitLayout::build(ctx.ep, &local.counts());

    // Labels are broadcast in plaintext — the whole point of the baseline.
    let labels: Vec<f64> = if ctx.is_super_client() {
        let labels = ctx.view.labels.clone().expect("super client labels");
        ctx.ep.broadcast(&labels);
        labels
    } else {
        ctx.ep.recv(ctx.super_client)
    };

    let mask = vec![true; ctx.num_samples()];
    let mut nodes = Vec::new();
    let root = build_node(ctx, &local, &layout, &labels, mask, 0, &mut nodes);
    DecisionTree::new(nodes, root, ctx.current_task())
}

/// Label rows: per-class indicators, or (y, y²) for regression.
fn label_rows(task: Task, labels: &[f64]) -> Vec<Vec<f64>> {
    match task {
        Task::Classification { classes } => (0..classes)
            .map(|k| labels.iter().map(|&y| f64::from(y as usize == k)).collect())
            .collect(),
        Task::Regression => vec![labels.to_vec(), labels.iter().map(|&y| y * y).collect()],
    }
}

fn build_node(
    ctx: &mut PartyContext<'_>,
    local: &LocalSplits,
    layout: &SplitLayout,
    labels: &[f64],
    mask: Vec<bool>,
    depth: usize,
    nodes: &mut Vec<Node>,
) -> usize {
    let task = ctx.current_task();
    let rows = label_rows(task, labels);
    let n_node: usize = mask.iter().filter(|&&b| b).count();

    // Plaintext pruning — every client can evaluate all conditions.
    let pure = {
        let mut first = None;
        mask.iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .all(|(i, _)| match first {
                None => {
                    first = Some(labels[i]);
                    true
                }
                Some(v) => (v - labels[i]).abs() < f64::EPSILON,
            })
    };
    if depth >= ctx.params.tree.max_depth
        || n_node < ctx.params.tree.min_samples
        || (ctx.params.tree.stop_when_pure && pure)
        || layout.total() == 0
    {
        nodes.push(Node::Leaf {
            value: leaf_value(task, labels, &mask),
        });
        return nodes.len() - 1;
    }

    // Local plaintext statistics per split, exchanged with everyone.
    let mine: PlainStats = local
        .indicators
        .iter()
        .flat_map(|feature| {
            feature.iter().map(|v_l| {
                let mut n_l = 0f64;
                let mut sums = vec![0f64; rows.len()];
                for i in 0..mask.len() {
                    if mask[i] && v_l[i] {
                        n_l += 1.0;
                        for (k, row) in rows.iter().enumerate() {
                            sums[k] += row[i];
                        }
                    }
                }
                (n_l, sums)
            })
        })
        .collect();
    let flat: Vec<f64> = mine
        .iter()
        .flat_map(|(n_l, sums)| std::iter::once(*n_l).chain(sums.iter().copied()))
        .collect();
    let all: Vec<Vec<f64>> = ctx.ep.exchange_all(&flat);

    // Global gain scan — identical formula to CartTrainer::split_score.
    let stride = rows.len() + 1;
    let n_total = n_node as f64;
    let g_totals: Vec<f64> = rows
        .iter()
        .map(|row| {
            row.iter()
                .zip(&mask)
                .filter(|(_, &b)| b)
                .map(|(v, _)| v)
                .sum()
        })
        .collect();
    let mut best: Option<(usize, f64)> = None; // (global index, score)
    let mut global = 0usize;
    for client_stats in &all {
        for split_stats in client_stats.chunks(stride) {
            let n_l = split_stats[0];
            let n_r = n_total - n_l;
            if n_l > 0.0 && n_r > 0.0 {
                let score = match task {
                    Task::Classification { .. } => {
                        let mut s = 0.0;
                        for (k, &g_l) in split_stats[1..].iter().enumerate() {
                            let g_r = g_totals[k] - g_l;
                            s += g_l * g_l / n_l + g_r * g_r / n_r;
                        }
                        s
                    }
                    Task::Regression => {
                        let g_l = split_stats[1];
                        let g_r = g_totals[0] - g_l;
                        g_l * g_l / n_l + g_r * g_r / n_r
                    }
                };
                if best.map_or(true, |(_, b)| score > b) {
                    best = Some((global, score));
                }
            }
            global += 1;
        }
    }

    let Some((best_global, _)) = best else {
        nodes.push(Node::Leaf {
            value: leaf_value(task, labels, &mask),
        });
        return nodes.len() - 1;
    };
    let (winner, local_feature, split_idx) = layout.locate(best_global);

    // Winner announces the model node and the plaintext left mask.
    let (feature_global, threshold, left_mask) = if ctx.id() == winner {
        let feature_global = ctx.view.feature_indices[local_feature];
        let threshold = local.candidates[local_feature].thresholds[split_idx];
        let indicator = &local.indicators[local_feature][split_idx];
        let left: Vec<bool> = mask.iter().zip(indicator).map(|(&m, &v)| m && v).collect();
        ctx.ep.broadcast(&(feature_global, threshold));
        ctx.ep.broadcast(&left);
        (feature_global, threshold, left)
    } else {
        let (feature_global, threshold) = ctx.ep.recv::<(usize, f64)>(winner);
        let left: Vec<bool> = ctx.ep.recv(winner);
        (feature_global, threshold, left)
    };
    let right_mask: Vec<bool> = mask
        .iter()
        .zip(&left_mask)
        .map(|(&m, &l)| m && !l)
        .collect();

    let left = build_node(ctx, local, layout, labels, left_mask, depth + 1, nodes);
    let right = build_node(ctx, local, layout, labels, right_mask, depth + 1, nodes);
    nodes.push(Node::Internal {
        feature: feature_global,
        threshold,
        left,
        right,
    });
    nodes.len() - 1
}

fn leaf_value(task: Task, labels: &[f64], mask: &[bool]) -> f64 {
    match task {
        Task::Classification { classes } => {
            let mut counts = vec![0usize; classes];
            for i in 0..mask.len() {
                if mask[i] {
                    counts[labels[i] as usize] += 1;
                }
            }
            let mut best = 0usize;
            for (k, &c) in counts.iter().enumerate() {
                if c > counts[best] {
                    best = k;
                }
            }
            best as f64
        }
        Task::Regression => {
            let mut sum = 0.0;
            let mut n = 0usize;
            for i in 0..mask.len() {
                if mask[i] {
                    sum += labels[i];
                    n += 1;
                }
            }
            if n == 0 {
                0.0
            } else {
                sum / n as f64
            }
        }
    }
}
