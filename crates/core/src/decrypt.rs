//! Joint threshold decryption: every client contributes a partial
//! decryption, partials are exchanged, and each client combines locally.
//! This is the paper's `Cd` operation — the dominant cost of both
//! protocols — and the operation the `-PP` variants parallelize across
//! ciphertexts (§8.3: "parallelism for threshold decryption of multiple
//! ciphertexts with 6 cores").
//!
//! Both phases run through the batched crypto runtime
//! ([`pivot_paillier::batch`]) on the shared worker pool; the former
//! spawn-per-batch `parallel_map` is gone. The network exchange between
//! them is an idle phase for this party's CPU, so the offline randomness
//! pool is topped up right before blocking on it.

use crate::party::PartyContext;
use pivot_bignum::BigUint;
use pivot_paillier::batch;
use pivot_paillier::threshold::{Combiner, PartialDecryption, SecretKeyShare};
use pivot_paillier::Ciphertext;

/// Jointly decrypt a batch of ciphertexts; all clients learn the plaintexts.
pub fn joint_decrypt_vec(ctx: &mut PartyContext<'_>, cts: &[Ciphertext]) -> Vec<BigUint> {
    if cts.is_empty() {
        return Vec::new();
    }
    ctx.metrics.add_decryptions(cts.len() as u64);
    let threads = ctx.crypto_threads();

    // Partial decryptions (the `-PP` knob: parallel across ciphertexts).
    let partials = batch::partial_decrypt_batch(&ctx.key_share, cts, threads);

    // One all-to-all exchange of the whole batch. The wait is idle time —
    // let the background workers refill the randomness pool meanwhile.
    ctx.nonces.refill();
    let all: Vec<Vec<PartialDecryption>> = ctx.ep.exchange_all(&partials);

    // Combine locally, batched across ciphertexts.
    let per_ct: Vec<Vec<PartialDecryption>> = (0..cts.len())
        .map(|idx| all.iter().map(|per_party| per_party[idx].clone()).collect())
        .collect();
    batch::combine_batch(&ctx.combiner, &per_ct, threads)
}

/// Decrypt a single ciphertext.
pub fn joint_decrypt(ctx: &mut PartyContext<'_>, ct: &Ciphertext) -> BigUint {
    joint_decrypt_vec(ctx, std::slice::from_ref(ct)).remove(0)
}

/// Stand-alone combiner used by tests that play all parties themselves.
pub fn combine_partials(
    combiner: &Combiner,
    shares: &[SecretKeyShare],
    ct: &Ciphertext,
) -> BigUint {
    let partials: Vec<PartialDecryption> = shares.iter().map(|s| s.partial_decrypt(ct)).collect();
    combiner.combine(&partials)
}
