//! Joint threshold decryption: every client contributes a partial
//! decryption, partials are exchanged, and each client combines locally.
//! This is the paper's `Cd` operation — the dominant cost of both
//! protocols — and the operation the `-PP` variants parallelize across
//! ciphertexts (§8.3: "parallelism for threshold decryption of multiple
//! ciphertexts with 6 cores").

use crate::party::PartyContext;
use pivot_bignum::BigUint;
use pivot_paillier::threshold::{Combiner, PartialDecryption, SecretKeyShare};
use pivot_paillier::Ciphertext;

/// Jointly decrypt a batch of ciphertexts; all clients learn the plaintexts.
pub fn joint_decrypt_vec(ctx: &mut PartyContext<'_>, cts: &[Ciphertext]) -> Vec<BigUint> {
    if cts.is_empty() {
        return Vec::new();
    }
    ctx.metrics.add_decryptions(cts.len() as u64);

    // Partial decryptions (parallelizable — the `-PP` knob).
    let partials: Vec<PartialDecryption> = if ctx.params.parallel_decrypt {
        parallel_map(cts, ctx.params.decrypt_threads, |ct| {
            ctx.key_share.partial_decrypt(ct)
        })
    } else {
        cts.iter()
            .map(|ct| ctx.key_share.partial_decrypt(ct))
            .collect()
    };

    // One all-to-all exchange of the whole batch.
    let all: Vec<Vec<PartialDecryption>> = ctx.ep.exchange_all(&partials);

    // Combine locally (also parallelizable).
    let combine_one = |idx: usize| -> BigUint {
        let parts: Vec<PartialDecryption> =
            all.iter().map(|per_party| per_party[idx].clone()).collect();
        ctx.combiner.combine(&parts)
    };
    if ctx.params.parallel_decrypt {
        let indices: Vec<usize> = (0..cts.len()).collect();
        parallel_map(&indices, ctx.params.decrypt_threads, |&i| combine_one(i))
    } else {
        (0..cts.len()).map(combine_one).collect()
    }
}

/// Decrypt a single ciphertext.
pub fn joint_decrypt(ctx: &mut PartyContext<'_>, ct: &Ciphertext) -> BigUint {
    joint_decrypt_vec(ctx, std::slice::from_ref(ct)).remove(0)
}

/// Chunked parallel map over a slice using scoped threads.
fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (ci, slice) in items.chunks(chunk).enumerate() {
            let f = &f;
            handles.push((
                ci,
                scope.spawn(move || slice.iter().map(f).collect::<Vec<U>>()),
            ));
        }
        for (ci, handle) in handles {
            let results = handle.join().expect("decryption worker panicked");
            for (off, val) in results.into_iter().enumerate() {
                out[ci * chunk + off] = Some(val);
            }
        }
    });
    out.into_iter()
        .map(|v| v.expect("all chunks filled"))
        .collect()
}

/// Stand-alone combiner used by tests that play all parties themselves.
pub fn combine_partials(
    combiner: &Combiner,
    shares: &[SecretKeyShare],
    ct: &Ciphertext,
) -> BigUint {
    let partials: Vec<PartialDecryption> = shares.iter().map(|s| s.partial_decrypt(ct)).collect();
    combiner.combine(&partials)
}
