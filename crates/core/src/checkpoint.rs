//! Level-barrier checkpoint hooks: the protocol side of crash recovery.
//!
//! Training already has natural barriers — the end of every tree level
//! (where the dealer/nonce pools refill) and the end of every ensemble
//! round. At each one the context snapshots its deterministic progress
//! cursors and hands them to an optional [`CheckpointSink`]; the sink (the
//! CLI layer, in practice) serializes the party's durable state and tells
//! the transport the barrier is persisted so retransmit retention may roll
//! forward.
//!
//! The protocol itself never branches on the sink: a run with no sink is
//! bit-identical to one that checkpoints at every level, because the
//! cursors are read-only snapshots and the sink writes only to disk and the
//! transport's retention plane (acks/marks are uncounted control frames).

use pivot_transport::Endpoint;

/// Deterministic progress counters snapshotted at a barrier. On resume the
/// re-executed run must reproduce these exactly at the same ordinal — any
/// mismatch means the scenario or code diverged from the checkpointed run,
/// so replaying the recorded transcript would desynchronize the protocol.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StateCursors {
    /// MPC communication rounds completed.
    pub mpc_rounds: u64,
    /// Secure multiplications performed.
    pub secure_mults: u64,
    /// Secure comparisons performed.
    pub secure_comparisons: u64,
    /// Paillier nonces drawn from the party's nonce stream (hits + misses
    /// — precomputation never changes the count, only who computed it).
    pub nonces_drawn: u64,
    /// Dealer preprocessing rows consumed from the split streams.
    pub dealer_rows: u64,
    /// Bytes this party has put on the wire.
    pub bytes_sent: u64,
}

/// Identity of one barrier: a monotonically increasing ordinal (the
/// protocol-wide barrier count, identical on every party), the tree level
/// or ensemble round it closed, and the progress cursors at that instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BarrierMeta {
    /// 1-based barrier count since setup; the checkpoint's version key.
    pub ordinal: u64,
    /// The tree level (level barriers) or ensemble round (tree barriers)
    /// that just completed.
    pub level: u64,
    /// Progress cursors at the barrier.
    pub cursors: StateCursors,
}

/// Receiver of barrier notifications. Implementations decide cadence (e.g.
/// `every_levels = N`) and persistence format; the protocol only promises
/// to call [`CheckpointSink::at_barrier`] at every barrier, in the same
/// order on every party.
pub trait CheckpointSink: Send {
    /// Called at each barrier with the endpoint (for transcript snapshots
    /// and retention marks) and the barrier's identity.
    fn at_barrier(&mut self, ep: &Endpoint, meta: &BarrierMeta);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursors_default_to_zero() {
        let c = StateCursors::default();
        assert_eq!(c.mpc_rounds, 0);
        assert_eq!(c.bytes_sent, 0);
    }
}
