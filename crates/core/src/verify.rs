//! The malicious-model verification plane (§9.1): Σ-protocol proofs on
//! the protocol's ciphertext commit points, spot-checked by every party.
//!
//! When [`crate::config::Verification`] is on, each committing party
//! attaches a proof bundle to the ciphertexts it publishes:
//!
//! * **popk** ([`PlaintextProof`]) on fresh encryptions — the super
//!   client's split-indicator commits at setup, party `m−1`'s η
//!   initialization in Algorithm 4;
//! * **popcm** ([`MultiplicationProof`]) on `β ⊗ [α]` masking — label
//!   masks, plaintext model updates, the Algorithm-4 η refinements;
//! * **pohdp** ([`DotProductProof`]) on the Eqn-7 encrypted split
//!   statistics, proving each pooled dot product used the *committed*
//!   indicator vector.
//!
//! Proof generation is **full** (every commit carries a proof — that is
//! what makes cheating unconditionally attributable); verification is
//! **spot-checked**: each party checks a seeded-deterministic `p`-fraction
//! of the commit stream, selected by a keyed hash over
//! `(phase, prover, commit index)` that every party evaluates identically,
//! so all parties check the same subset and either all accept or all
//! raise. A failed check raises
//! [`ProtocolError::ProofRejected`] through the typed error plane, naming
//! the accused prover, the observing party, the phase and the proof kind.
//!
//! The prover verifies its own commits too: a deterministic `[adversary]`
//! tampering therefore fails on *every* party in the same round, and the
//! whole run exits through [`pivot_transport::catch_failures`] without
//! wedging a peer on a dead socket.
//!
//! With verification off, none of these hooks touches the transport or
//! the nonce stream — the transcript stays bit-identical to the
//! honest-but-curious protocol.

use crate::party::PartyContext;
use pivot_bignum::{rng as brng, BigUint};
use pivot_paillier::Ciphertext;
use pivot_transport::{ProtocolError, Wire};
use pivot_zkp::{DotProductProof, MultiplicationProof, PlaintextProof};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::cell::RefCell;
use std::collections::HashMap;
use std::time::Instant;

/// popk bundle entry: `(a, z, w)`.
pub(crate) type PopkMsg = (BigUint, BigUint, BigUint);
/// popcm bundle entry: `(c₁, (a, b), (z, w₁, w₂))` — the plaintext
/// commitment rides with its proof.
pub(crate) type PopcmMsg = (BigUint, (BigUint, BigUint), (BigUint, BigUint, BigUint));
/// One pohdp proof: `(a⃗, (b, z⃗), (w₁⃗, w₂))`.
pub(crate) type PohdpProofMsg = (
    Vec<BigUint>,
    (BigUint, Vec<BigUint>),
    (Vec<BigUint>, BigUint),
);
/// One split's pohdp entry: the committed indicator encryptions plus one
/// proof per statistic of the stride.
pub(crate) type PohdpSplitMsg = (Vec<BigUint>, Vec<PohdpProofMsg>);

/// Per-party verification state, built at setup when the knob is on.
pub struct VerifyPlane {
    /// Fraction of the commit stream each party verifies.
    probability: f64,
    /// The deterministic tampering injection, if this run carries one.
    adversary: Option<crate::config::AdversarySpec>,
    /// Common spot-selection key (derived from the shared dealer seed so
    /// every party picks the identical subset).
    select_seed: u64,
    /// Private proof randomness (commitment nonces, per-proof seeds).
    rng: RefCell<StdRng>,
    /// Commits this party has *proven* per `(phase, prover=me)` — the
    /// tamper index space.
    prove_counts: RefCell<HashMap<(String, usize), u64>>,
    /// Commits this party has *checked* per `(phase, prover)` — the
    /// spot-selection index space, advanced in lockstep on all parties.
    check_counts: RefCell<HashMap<(String, usize), u64>>,
}

impl VerifyPlane {
    pub fn new(params: &crate::config::PivotParams, id: usize) -> VerifyPlane {
        VerifyPlane {
            probability: params.verification.probability(),
            adversary: params.adversary.clone(),
            select_seed: params.dealer_seed ^ 0x5E1E_C7ED_0BAD_CAFE,
            rng: RefCell::new(StdRng::seed_from_u64(
                params.dealer_seed ^ 0x2AFE_D00D_F00D ^ ((id as u64 + 1) << 24),
            )),
            prove_counts: RefCell::new(HashMap::new()),
            check_counts: RefCell::new(HashMap::new()),
        }
    }

    /// Whether commit `index` of `(phase, prover)` is spot-checked. Keyed
    /// off the shared dealer seed, so identical on every party.
    fn selected(&self, phase: &str, prover: usize, index: u64) -> bool {
        if self.probability >= 1.0 {
            return true;
        }
        if self.probability <= 0.0 {
            return false;
        }
        let mut h = splitmix(self.select_seed);
        for b in phase.bytes() {
            h = splitmix(h ^ u64::from(b));
        }
        h = splitmix(h ^ prover as u64);
        h = splitmix(h ^ index);
        (h as f64) < self.probability * (u64::MAX as f64)
    }

    /// Pre-draw per-proof seeds (serially, so the parallel proof batch is
    /// schedule-independent), returned enumerated for the worker map.
    fn draw_seeds(&self, n: usize) -> Vec<(usize, u64)> {
        let mut rng = self.rng.borrow_mut();
        (0..n).map(|i| (i, rng.next_u64())).collect()
    }

    fn advance(map: &RefCell<HashMap<(String, usize), u64>>, phase: &str, p: usize, n: u64) -> u64 {
        let mut map = map.borrow_mut();
        let slot = map.entry((phase.to_string(), p)).or_insert(0);
        let base = *slot;
        *slot += n;
        base
    }

    /// Apply the `[adversary]` injection to this commit batch, if it
    /// lands here: multiply the target ciphertext by `1+N` (adds 1 to the
    /// plaintext), *after* the proof was generated over the honest value.
    fn tamper(&self, ctx: &PartyContext<'_>, phase: &str, base: u64, cts: &mut [Ciphertext]) {
        let Some(adv) = &self.adversary else { return };
        if adv.party != ctx.id() || adv.phase != phase {
            return;
        }
        let lo = base as usize;
        if adv.index < lo || adv.index >= lo + cts.len() {
            return;
        }
        let i = adv.index - lo;
        let n2 = ctx.pk.n_squared();
        let bumped = (cts[i].raw() * &(ctx.pk.n() + &BigUint::one())).rem_of(n2);
        cts[i] = Ciphertext::from_raw(bumped);
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn wire_len<T: Wire>(msg: &T) -> u64 {
    let mut buf = Vec::new();
    msg.encode(&mut buf);
    buf.len() as u64
}

fn reject(ctx: &PartyContext<'_>, prover: usize, phase: &str, kind: &str, detail: String) -> ! {
    ProtocolError::ProofRejected {
        party: prover,
        observer: ctx.id(),
        phase: phase.to_string(),
        proof_kind: kind.to_string(),
        detail,
    }
    .raise()
}

/// Record one verification pass and raise on the first failed check.
#[allow(clippy::too_many_arguments)]
fn conclude(
    ctx: &PartyContext<'_>,
    phase: &str,
    prover: usize,
    kind: &str,
    base: u64,
    total: usize,
    picked: &[usize],
    verdicts: &[bool],
    started: Instant,
) {
    let rejected = verdicts.iter().filter(|&&ok| !ok).count() as u64;
    ctx.metrics
        .add_proofs_checked(picked.len() as u64, (total - picked.len()) as u64, rejected);
    ctx.metrics.add_verification_time(started.elapsed());
    if let Some(pos) = verdicts.iter().position(|&ok| !ok) {
        reject(
            ctx,
            prover,
            phase,
            kind,
            format!("commit index {}", base + picked[pos] as u64),
        );
    }
}

/// Discard witnesses left over from unhooked encryption batches, so the
/// next hooked operation drains exactly its own nonces. No-op (and no
/// witness is ever retained) with verification off.
pub(crate) fn scrub_witnesses(ctx: &PartyContext<'_>) {
    if ctx.verify.is_some() {
        drop(ctx.nonces.drain_witnesses());
    }
}

/// Prover side of a popk commit: prove knowledge of every `(xᵢ, rᵢ)`
/// behind the fresh encryptions in `cts` (nonces drained from the pool),
/// then apply any tampering injection in place. Call *between* the
/// encryption batch and its broadcast.
pub(crate) fn prove_popk(
    ctx: &PartyContext<'_>,
    phase: &str,
    cts: &mut [Ciphertext],
    xs: &[BigUint],
) -> Option<Vec<PopkMsg>> {
    let plane = ctx.verify.as_ref()?;
    let started = Instant::now();
    let rs = ctx.nonces.drain_witnesses();
    assert_eq!(rs.len(), cts.len(), "popk witness count at {phase}");
    assert_eq!(xs.len(), cts.len());
    let jobs = plane.draw_seeds(cts.len());
    let pk = &ctx.pk;
    let held: &[Ciphertext] = cts;
    let msgs: Vec<PopkMsg> =
        pivot_runtime::global().map(ctx.crypto_threads(), &jobs, |&(i, seed)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = PlaintextProof::prove(pk, &held[i], &xs[i], &rs[i], &mut rng);
            (p.commitment, p.z, p.w)
        });
    let base = VerifyPlane::advance(&plane.prove_counts, phase, ctx.id(), cts.len() as u64);
    plane.tamper(ctx, phase, base, cts);
    ctx.metrics.add_verification_time(started.elapsed());
    Some(msgs)
}

/// All-party side of a popk commit: the prover broadcasts its bundle,
/// everyone (prover included) verifies the spot-selected subset against
/// the published ciphertexts.
pub(crate) fn check_popk(
    ctx: &PartyContext<'_>,
    phase: &str,
    prover: usize,
    cts: &[Ciphertext],
    bundle: Option<Vec<PopkMsg>>,
) {
    let Some(plane) = ctx.verify.as_ref() else {
        return;
    };
    let msgs: Vec<PopkMsg> = if ctx.id() == prover {
        let msgs = bundle.expect("prover supplies its own proof bundle");
        ctx.metrics
            .add_proofs_generated(msgs.len() as u64, wire_len(&msgs));
        ctx.ep.broadcast(&msgs);
        msgs
    } else {
        ctx.ep.recv(prover)
    };
    let started = Instant::now();
    let base = VerifyPlane::advance(&plane.check_counts, phase, prover, cts.len() as u64);
    if msgs.len() != cts.len() {
        ctx.metrics.add_proofs_checked(0, 0, 1);
        reject(
            ctx,
            prover,
            phase,
            "popk",
            format!(
                "bundle carries {} proofs for {} commits",
                msgs.len(),
                cts.len()
            ),
        );
    }
    let picked: Vec<usize> = (0..cts.len())
        .filter(|&i| plane.selected(phase, prover, base + i as u64))
        .collect();
    let pk = &ctx.pk;
    let verdicts: Vec<bool> = pivot_runtime::global().map(ctx.crypto_threads(), &picked, |&i| {
        let (commitment, z, w) = msgs[i].clone();
        PlaintextProof { commitment, z, w }.verify(pk, &cts[i])
    });
    conclude(
        ctx,
        phase,
        prover,
        "popk",
        base,
        cts.len(),
        &picked,
        &verdicts,
        started,
    );
}

/// Prover side of a popcm commit: each `outputs[i] = inputs[i]^{xᵢ}·sᵢ^N`
/// (binary masking or plaintext scaling), with `sᵢ` drained from the
/// nonce pool. Commits `c₁ᵢ = Enc(xᵢ)` with fresh plane randomness and
/// proves the multiplicative relation, then applies any tampering.
pub(crate) fn prove_popcm(
    ctx: &PartyContext<'_>,
    phase: &str,
    inputs: &[Ciphertext],
    outputs: &mut [Ciphertext],
    xs: &[BigUint],
) -> Option<Vec<PopcmMsg>> {
    let plane = ctx.verify.as_ref()?;
    let started = Instant::now();
    let ss = ctx.nonces.drain_witnesses();
    assert_eq!(ss.len(), outputs.len(), "popcm witness count at {phase}");
    assert_eq!(inputs.len(), outputs.len());
    assert_eq!(xs.len(), outputs.len());
    let (r1s, jobs) = {
        let mut rng = plane.rng.borrow_mut();
        let r1s: Vec<BigUint> = (0..outputs.len())
            .map(|_| brng::gen_coprime(&mut *rng, ctx.pk.n()))
            .collect();
        let jobs: Vec<(usize, u64)> = (0..outputs.len()).map(|i| (i, rng.next_u64())).collect();
        (r1s, jobs)
    };
    let pk = &ctx.pk;
    let held: &[Ciphertext] = outputs;
    let msgs: Vec<PopcmMsg> =
        pivot_runtime::global().map(ctx.crypto_threads(), &jobs, |&(i, seed)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let c1 = pk.encrypt_with(&xs[i], &r1s[i]);
            let p = MultiplicationProof::prove(
                pk, &c1, &inputs[i], &held[i], &xs[i], &r1s[i], &ss[i], &mut rng,
            );
            (c1.into_raw(), (p.a, p.b), (p.z, p.w1, p.w2))
        });
    let base = VerifyPlane::advance(&plane.prove_counts, phase, ctx.id(), outputs.len() as u64);
    plane.tamper(ctx, phase, base, outputs);
    ctx.metrics.add_verification_time(started.elapsed());
    Some(msgs)
}

/// All-party side of a popcm commit; `inputs` are the `c₂` ciphertexts
/// every party already holds (the vectors being masked).
pub(crate) fn check_popcm(
    ctx: &PartyContext<'_>,
    phase: &str,
    prover: usize,
    inputs: &[Ciphertext],
    outputs: &[Ciphertext],
    bundle: Option<Vec<PopcmMsg>>,
) {
    let Some(plane) = ctx.verify.as_ref() else {
        return;
    };
    let msgs: Vec<PopcmMsg> = if ctx.id() == prover {
        let msgs = bundle.expect("prover supplies its own proof bundle");
        ctx.metrics
            .add_proofs_generated(msgs.len() as u64, wire_len(&msgs));
        ctx.ep.broadcast(&msgs);
        msgs
    } else {
        ctx.ep.recv(prover)
    };
    let started = Instant::now();
    let base = VerifyPlane::advance(&plane.check_counts, phase, prover, outputs.len() as u64);
    if msgs.len() != outputs.len() || inputs.len() != outputs.len() {
        ctx.metrics.add_proofs_checked(0, 0, 1);
        reject(
            ctx,
            prover,
            phase,
            "popcm",
            format!(
                "bundle carries {} proofs for {} commits",
                msgs.len(),
                outputs.len()
            ),
        );
    }
    let picked: Vec<usize> = (0..outputs.len())
        .filter(|&i| plane.selected(phase, prover, base + i as u64))
        .collect();
    let pk = &ctx.pk;
    let verdicts: Vec<bool> = pivot_runtime::global().map(ctx.crypto_threads(), &picked, |&i| {
        let (c1_raw, (a, b), (z, w1, w2)) = msgs[i].clone();
        let c1 = Ciphertext::from_raw(c1_raw);
        MultiplicationProof { a, b, z, w1, w2 }.verify(pk, &c1, &inputs[i], &outputs[i])
    });
    conclude(
        ctx,
        phase,
        prover,
        "popcm",
        base,
        outputs.len(),
        &picked,
        &verdicts,
        started,
    );
}

/// Prover side of the Eqn-7 statistics commit: for every local split,
/// commit the indicator bits (`Enc(xᵢ)` under plane randomness) and prove
/// each of the `stride` pooled dot products against those commitments.
/// `sets[k]` is the `k`-th input vector (`[α]`, then each `[γ]`), shared
/// by every split; `outputs` is the flattened split-major statistics
/// vector exactly as it goes on the wire. `dot_binary` folds raw products
/// with no extra randomizer, so the proof's rerandomizer is `s = 1`.
pub(crate) fn prove_pohdp(
    ctx: &PartyContext<'_>,
    phase: &str,
    sets: &[&[Ciphertext]],
    indicators: &[&Vec<bool>],
    outputs: &mut [Ciphertext],
) -> Option<Vec<PohdpSplitMsg>> {
    let plane = ctx.verify.as_ref()?;
    let started = Instant::now();
    let stride = sets.len();
    assert_eq!(outputs.len(), indicators.len() * stride);
    let n = sets.first().map_or(0, |s| s.len());
    // Per split: commitment nonces plus one proof seed per statistic,
    // drawn serially so the parallel batch is schedule-independent.
    let jobs: Vec<(usize, Vec<BigUint>, Vec<u64>)> = {
        let mut rng = plane.rng.borrow_mut();
        (0..indicators.len())
            .map(|sidx| {
                let rs: Vec<BigUint> = (0..n)
                    .map(|_| brng::gen_coprime(&mut *rng, ctx.pk.n()))
                    .collect();
                let seeds: Vec<u64> = (0..stride).map(|_| rng.next_u64()).collect();
                (sidx, rs, seeds)
            })
            .collect()
    };
    let pk = &ctx.pk;
    let held: &[Ciphertext] = outputs;
    let one = BigUint::one();
    let msgs: Vec<PohdpSplitMsg> =
        pivot_runtime::global().map(ctx.crypto_threads(), &jobs, |(sidx, rs, seeds)| {
            let xs: Vec<BigUint> = indicators[*sidx]
                .iter()
                .map(|&bit| BigUint::from_u64(u64::from(bit)))
                .collect();
            let commitments: Vec<Ciphertext> = xs
                .iter()
                .zip(rs)
                .map(|(x, r)| pk.encrypt_with(x, r))
                .collect();
            let proofs: Vec<PohdpProofMsg> = (0..stride)
                .map(|k| {
                    let mut rng = StdRng::seed_from_u64(seeds[k]);
                    let p = DotProductProof::prove(
                        pk,
                        &commitments,
                        sets[k],
                        &held[sidx * stride + k],
                        &xs,
                        rs,
                        &one,
                        &mut rng,
                    );
                    (p.a, (p.b, p.z), (p.w1, p.w2))
                })
                .collect();
            (
                commitments.into_iter().map(Ciphertext::into_raw).collect(),
                proofs,
            )
        });
    let base = VerifyPlane::advance(&plane.prove_counts, phase, ctx.id(), outputs.len() as u64);
    plane.tamper(ctx, phase, base, outputs);
    ctx.metrics.add_verification_time(started.elapsed());
    Some(msgs)
}

/// All-party side of one prover's statistics commit (`outputs` = that
/// prover's flattened pooled statistics as received).
pub(crate) fn check_pohdp(
    ctx: &PartyContext<'_>,
    phase: &str,
    prover: usize,
    sets: &[&[Ciphertext]],
    outputs: &[Ciphertext],
    bundle: Option<Vec<PohdpSplitMsg>>,
) {
    let Some(plane) = ctx.verify.as_ref() else {
        return;
    };
    let msgs: Vec<PohdpSplitMsg> = if ctx.id() == prover {
        let msgs = bundle.expect("prover supplies its own proof bundle");
        ctx.metrics
            .add_proofs_generated(outputs.len() as u64, wire_len(&msgs));
        ctx.ep.broadcast(&msgs);
        msgs
    } else {
        ctx.ep.recv(prover)
    };
    let started = Instant::now();
    let stride = sets.len();
    let n = sets.first().map_or(0, |s| s.len());
    let base = VerifyPlane::advance(&plane.check_counts, phase, prover, outputs.len() as u64);
    let malformed = msgs.len() * stride != outputs.len()
        || msgs
            .iter()
            .any(|(craws, proofs)| craws.len() != n || proofs.len() != stride);
    if malformed {
        ctx.metrics.add_proofs_checked(0, 0, 1);
        reject(
            ctx,
            prover,
            phase,
            "pohdp",
            format!(
                "bundle carries {} splits for {} commits of stride {stride}",
                msgs.len(),
                outputs.len()
            ),
        );
    }
    let picked: Vec<usize> = (0..outputs.len())
        .filter(|&i| plane.selected(phase, prover, base + i as u64))
        .collect();
    let pk = &ctx.pk;
    let verdicts: Vec<bool> = pivot_runtime::global().map(ctx.crypto_threads(), &picked, |&idx| {
        let (craws, proofs) = &msgs[idx / stride];
        let commitments: Vec<Ciphertext> = craws
            .iter()
            .map(|raw| Ciphertext::from_raw(raw.clone()))
            .collect();
        let (a, (b, z), (w1, w2)) = proofs[idx % stride].clone();
        DotProductProof { a, b, z, w1, w2 }.verify(
            pk,
            &commitments,
            sets[idx % stride],
            &outputs[idx],
        )
    });
    conclude(
        ctx,
        phase,
        prover,
        "pohdp",
        base,
        outputs.len(),
        &picked,
        &verdicts,
        started,
    );
}

/// Prover-side hook for a commit checked by deterministic recomputation
/// rather than a proof (party 0's public-leaf dot products): advances the
/// prover's commit counter and applies any tampering injection.
pub(crate) fn tamper_outputs(ctx: &PartyContext<'_>, phase: &str, cts: &mut [Ciphertext]) {
    let Some(plane) = ctx.verify.as_ref() else {
        return;
    };
    let base = VerifyPlane::advance(&plane.prove_counts, phase, ctx.id(), cts.len() as u64);
    plane.tamper(ctx, phase, base, cts);
}

/// All-party check of a deterministically recomputable commit: compare
/// the spot-selected subset of `actual` (what the prover published)
/// against `expected` (recomputed locally from public data).
pub(crate) fn check_recompute(
    ctx: &PartyContext<'_>,
    phase: &str,
    prover: usize,
    expected: &[Ciphertext],
    actual: &[Ciphertext],
) {
    let Some(plane) = ctx.verify.as_ref() else {
        return;
    };
    let started = Instant::now();
    assert_eq!(expected.len(), actual.len());
    let base = VerifyPlane::advance(&plane.check_counts, phase, prover, actual.len() as u64);
    let picked: Vec<usize> = (0..actual.len())
        .filter(|&i| plane.selected(phase, prover, base + i as u64))
        .collect();
    let verdicts: Vec<bool> = picked
        .iter()
        .map(|&i| expected[i].raw() == actual[i].raw())
        .collect();
    conclude(
        ctx,
        phase,
        prover,
        "recompute",
        base,
        actual.len(),
        &picked,
        &verdicts,
        started,
    );
}

/// Equivocation guard for ring phases: the party that received `direct`
/// point-to-point compares it with the prover's verification `broadcast`
/// of the same ciphertexts — a prover sending different values down the
/// ring than it proves to the group is caught here.
pub(crate) fn check_equivocation(
    ctx: &PartyContext<'_>,
    phase: &str,
    prover: usize,
    direct: &[Ciphertext],
    broadcast: &[Ciphertext],
) {
    if ctx.verify.is_none() {
        return;
    }
    let mismatch = direct.len() != broadcast.len()
        || direct
            .iter()
            .zip(broadcast)
            .any(|(d, b)| d.raw() != b.raw());
    if mismatch {
        ctx.metrics.add_proofs_checked(0, 0, 1);
        reject(
            ctx,
            prover,
            phase,
            "equivocation",
            "ring transfer differs from the proven broadcast".to_string(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PivotParams, Verification};

    fn plane_with(p: f64, seed: u64) -> VerifyPlane {
        let params = PivotParams {
            verification: Verification::Spot(p),
            dealer_seed: seed,
            ..PivotParams::default()
        };
        VerifyPlane::new(&params, 0)
    }

    #[test]
    fn selection_is_deterministic_and_roughly_proportional() {
        let plane = plane_with(0.25, 7);
        let twin = plane_with(0.25, 7);
        let hits: Vec<bool> = (0..4000).map(|i| plane.selected("stats", 1, i)).collect();
        let again: Vec<bool> = (0..4000).map(|i| twin.selected("stats", 1, i)).collect();
        assert_eq!(hits, again, "same seed must select the same subset");
        let count = hits.iter().filter(|&&h| h).count();
        assert!(
            (600..=1400).contains(&count),
            "spot(0.25) over 4000 commits selected {count}"
        );
        // Different phase / prover keys decorrelate.
        let other: Vec<bool> = (0..4000).map(|i| plane.selected("setup", 1, i)).collect();
        assert_ne!(hits, other);
    }

    #[test]
    fn full_and_off_probabilities_are_absolute() {
        let full = plane_with(1.0, 3);
        assert!((0..100).all(|i| full.selected("update", 0, i)));
        let off = plane_with(0.0, 3);
        assert!(!(0..100).any(|i| off.selected("update", 0, i)));
    }

    #[test]
    fn counters_advance_per_phase_and_prover() {
        let plane = plane_with(0.5, 11);
        assert_eq!(VerifyPlane::advance(&plane.check_counts, "setup", 0, 10), 0);
        assert_eq!(VerifyPlane::advance(&plane.check_counts, "setup", 0, 5), 10);
        assert_eq!(VerifyPlane::advance(&plane.check_counts, "setup", 1, 5), 0);
        assert_eq!(VerifyPlane::advance(&plane.check_counts, "stats", 0, 5), 0);
        // Prove-side counting is independent of check-side counting.
        assert_eq!(VerifyPlane::advance(&plane.prove_counts, "setup", 0, 4), 0);
        assert_eq!(VerifyPlane::advance(&plane.prove_counts, "setup", 0, 4), 4);
    }
}
