//! GBDT extension (§7.2): sequential regression trees on residuals that
//! must stay hidden from everyone — including the super client.
//!
//! Training keeps the per-round label vectors `[Y_w]` encrypted: residuals
//! are computed on shares, converted into encrypted `[γ₁] = [R]`,
//! `[γ₂] = [R²]` vectors once per round (the paper's optimization), and
//! the winning client updates them alongside `[α]` during tree building.
//! Classification uses one-vs-rest with a **secure softmax** over the
//! cumulative scores each round.

use crate::config::Scheduling;
use crate::conversion::{ciphers_to_shares, shares_to_ciphers};
use crate::masks::initial_mask;
use crate::party::PartyContext;
use crate::predict_basic::predict_batch_encrypted;
use crate::train_basic::{train_with_labels, NodeLabels};
use pivot_data::Task;
use pivot_mpc::{Fp, Share};
use pivot_trees::DecisionTree;

/// GBDT protocol parameters.
#[derive(Clone, Debug)]
pub struct GbdtProtocolParams {
    /// Boosting rounds `W`.
    pub rounds: usize,
    /// Shrinkage applied to every tree's contribution.
    pub learning_rate: f64,
}

impl Default for GbdtProtocolParams {
    fn default() -> Self {
        GbdtProtocolParams {
            rounds: 4,
            learning_rate: 0.5,
        }
    }
}

/// The released GBDT model (plaintext trees, §7.2 basic setting):
/// `forests[k]` holds class `k`'s regression trees (single forest for
/// regression).
#[derive(Clone, Debug)]
pub struct GbdtModel {
    pub forests: Vec<Vec<DecisionTree>>,
    pub learning_rate: f64,
    pub task: Task,
}

/// Train a GBDT model with encrypted residual labels.
pub fn train_gbdt(ctx: &mut PartyContext<'_>, gbdt: &GbdtProtocolParams) -> GbdtModel {
    match ctx.view.task {
        Task::Regression => train_gbdt_regression(ctx, gbdt),
        Task::Classification { classes } => train_gbdt_classification(ctx, gbdt, classes),
    }
}

fn train_gbdt_regression(ctx: &mut PartyContext<'_>, gbdt: &GbdtProtocolParams) -> GbdtModel {
    let n = ctx.num_samples();
    // The super client shares the (normalized) labels once.
    let y = share_labels(ctx, |y| y);
    let mut cumulative = vec![Share::ZERO; n];
    let mut trees = Vec::with_capacity(gbdt.rounds);
    for _ in 0..gbdt.rounds {
        let residuals: Vec<Share> = y.iter().zip(&cumulative).map(|(&t, &f)| t - f).collect();
        let tree = train_residual_tree(ctx, &residuals);
        accumulate_predictions(ctx, &tree, gbdt.learning_rate, &mut cumulative);
        trees.push(tree);
        ctx.tree_barrier();
    }
    GbdtModel {
        forests: vec![trees],
        learning_rate: gbdt.learning_rate,
        task: Task::Regression,
    }
}

fn train_gbdt_classification(
    ctx: &mut PartyContext<'_>,
    gbdt: &GbdtProtocolParams,
    classes: usize,
) -> GbdtModel {
    let n = ctx.num_samples();
    // One-vs-rest targets, shared by the super client.
    let targets: Vec<Vec<Share>> = (0..classes)
        .map(|k| share_labels(ctx, move |y| if y as usize == k { 1.0 } else { 0.0 }))
        .collect();
    let mut scores: Vec<Vec<Share>> = vec![vec![Share::ZERO; n]; classes];
    let mut forests: Vec<Vec<DecisionTree>> = vec![Vec::new(); classes];

    for _ in 0..gbdt.rounds {
        // Secure softmax over the cumulative scores (row per sample).
        let mut logits = Vec::with_capacity(n * classes);
        for i in 0..n {
            for class_scores in scores.iter() {
                logits.push(class_scores[i]);
            }
        }
        let probs = if ctx.params.scheduling == Scheduling::Pipelined {
            // Cumulative scores are sums of `rounds` shrunk leaf means;
            // residual leaves stay in [−1, 1] up to fixed-point noise, so
            // |logit| ≤ rounds·lr (+1 margin for the truncation noise).
            let bound = gbdt.rounds as f64 * gbdt.learning_rate + 1.0;
            ctx.engine.softmax_rows_clamped(&logits, classes, bound)
        } else {
            ctx.engine.softmax_rows(&logits, classes)
        };

        for (k, forest) in forests.iter_mut().enumerate() {
            let residuals: Vec<Share> = (0..n)
                .map(|i| targets[k][i] - probs[i * classes + k])
                .collect();
            let tree = train_residual_tree(ctx, &residuals);
            accumulate_predictions(ctx, &tree, gbdt.learning_rate, &mut scores[k]);
            forest.push(tree);
            ctx.tree_barrier();
        }
    }
    GbdtModel {
        forests,
        learning_rate: gbdt.learning_rate,
        task: Task::Classification { classes },
    }
}

/// Share the super client's labels (mapped through `f`) with all parties.
fn share_labels(ctx: &mut PartyContext<'_>, f: impl Fn(f64) -> f64) -> Vec<Share> {
    let values: Option<Vec<Fp>> = ctx.is_super_client().then(|| {
        let cfg = ctx.params.fixed;
        ctx.view
            .labels
            .as_ref()
            .expect("super client holds labels")
            .iter()
            .map(|&y| cfg.encode(f(y)))
            .collect()
    });
    ctx.engine.share_input(ctx.super_client, values.as_deref())
}

/// One boosting stage: encrypt the residual moments and train a regression
/// tree on them with the basic protocol.
fn train_residual_tree(ctx: &mut PartyContext<'_>, residuals: &[Share]) -> DecisionTree {
    // [γ₁] = [R], [γ₂] = [R²] — encrypted once per round (§7.2).
    let squares = ctx.engine.fixmul_vec(residuals, residuals);
    let gamma1 = shares_to_ciphers(ctx, residuals);
    let gamma2 = shares_to_ciphers(ctx, &squares);
    let alpha = initial_mask(ctx, &vec![true; residuals.len()]);
    ctx.task_override = Some(Task::Regression);
    let tree = train_with_labels(ctx, alpha, NodeLabels::Encrypted(vec![gamma1, gamma2]));
    ctx.task_override = None;
    tree
}

/// Predict all training samples with the new tree (Algorithm 4, encrypted
/// outputs), convert to shares, and fold into the cumulative scores.
fn accumulate_predictions(
    ctx: &mut PartyContext<'_>,
    tree: &DecisionTree,
    learning_rate: f64,
    cumulative: &mut [Share],
) {
    let local_samples: Vec<Vec<f64>> = (0..ctx.num_samples())
        .map(|i| ctx.view.features[i].clone())
        .collect();
    ctx.task_override = Some(Task::Regression);
    let enc_preds = predict_batch_encrypted(ctx, tree, &local_samples);
    ctx.task_override = None;
    let pred_shares = ciphers_to_shares(ctx, &enc_preds);
    let scaled = ctx.engine.fixscale_vec(&pred_shares, learning_rate);
    for (acc, s) in cumulative.iter_mut().zip(scaled) {
        *acc = *acc + s;
    }
}

/// Joint GBDT prediction (§7.2): per-tree Algorithm 4, homomorphic
/// aggregation; classification picks the secure argmax over class scores.
pub fn predict_gbdt(ctx: &mut PartyContext<'_>, model: &GbdtModel, local_sample: &[f64]) -> f64 {
    predict_gbdt_batch(ctx, model, std::slice::from_ref(&local_sample.to_vec()))[0]
}

/// Batched GBDT prediction.
pub fn predict_gbdt_batch(
    ctx: &mut PartyContext<'_>,
    model: &GbdtModel,
    local_samples: &[Vec<f64>],
) -> Vec<f64> {
    let n = local_samples.len();
    // Per class: homomorphic sum of the encrypted tree predictions.
    let mut class_scores: Vec<Vec<Share>> = Vec::with_capacity(model.forests.len());
    for forest in &model.forests {
        let mut acc: Option<Vec<_>> = None;
        ctx.task_override = Some(Task::Regression);
        for tree in forest {
            let preds = predict_batch_encrypted(ctx, tree, local_samples);
            acc = Some(match acc {
                None => preds,
                Some(prev) => prev
                    .iter()
                    .zip(&preds)
                    .map(|(a, b)| ctx.pk.add(a, b))
                    .collect(),
            });
        }
        ctx.task_override = None;
        let summed = acc.expect("at least one tree");
        let shares = ciphers_to_shares(ctx, &summed);
        let scaled = ctx.engine.fixscale_vec(&shares, model.learning_rate);
        class_scores.push(scaled);
    }

    match model.task {
        Task::Regression => {
            let opened = ctx.engine.open_vec(&class_scores[0]);
            opened.iter().map(|&v| ctx.params.fixed.decode(v)).collect()
        }
        Task::Classification { .. } => {
            // Secure argmax over class scores per sample (softmax is
            // monotone, so the argmax matches the paper's §7.2 decision).
            (0..n)
                .map(|i| {
                    let row: Vec<Share> = class_scores.iter().map(|scores| scores[i]).collect();
                    let (idx, _) = ctx.engine.argmax(&row);
                    ctx.engine.open(idx).value() as f64
                })
                .collect()
        }
    }
}
