//! Random forest extension (§7.1): independently trained basic-protocol
//! trees over public bootstrap masks; secure aggregation at prediction —
//! majority vote via secure maximum for classification, homomorphic mean
//! for regression.

use crate::decrypt::joint_decrypt_vec;
use crate::party::PartyContext;
use crate::predict_basic::{decode_prediction, predict_batch_encrypted};
use crate::train_basic::train_with_mask;
use pivot_data::Task;
use pivot_mpc::Share;
use pivot_trees::DecisionTree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random-forest protocol parameters.
#[derive(Clone, Debug)]
pub struct RfProtocolParams {
    /// Number of trees `W`.
    pub trees: usize,
    /// Bootstrap draw fraction (1.0 ⇒ `n` draws with replacement).
    pub sample_fraction: f64,
    /// Seed for the (public) bootstrap masks — must match across clients.
    pub bootstrap_seed: u64,
}

impl Default for RfProtocolParams {
    fn default() -> Self {
        RfProtocolParams {
            trees: 4,
            sample_fraction: 1.0,
            bootstrap_seed: 0x5EED,
        }
    }
}

/// The released RF model: plaintext trees (basic protocol §7.1).
#[derive(Clone, Debug)]
pub struct RfModel {
    pub trees: Vec<DecisionTree>,
}

/// Train `W` independent trees (each a full basic-protocol training run)
/// over public bootstrap masks derived from a common seed.
pub fn train_rf(ctx: &mut PartyContext<'_>, rf: &RfProtocolParams) -> RfModel {
    assert!(rf.trees >= 1);
    let n = ctx.num_samples();
    let draws = ((n as f64) * rf.sample_fraction).round().max(1.0) as usize;
    let trees = (0..rf.trees)
        .map(|w| {
            // Public bootstrap: every client derives the identical mask.
            let mut rng = StdRng::seed_from_u64(rf.bootstrap_seed ^ (w as u64) << 16);
            let mut mask = vec![false; n];
            for _ in 0..draws {
                mask[rng.gen_range(0..n)] = true;
            }
            let tree = train_with_mask(ctx, &mask);
            ctx.tree_barrier();
            tree
        })
        .collect();
    RfModel { trees }
}

/// Joint RF prediction on one sample (§7.1): each tree runs Algorithm 4 to
/// an *encrypted* prediction; aggregation is secure.
pub fn predict_rf(ctx: &mut PartyContext<'_>, model: &RfModel, local_sample: &[f64]) -> f64 {
    let sample = vec![local_sample.to_vec()];
    let per_tree: Vec<_> = model
        .trees
        .iter()
        .map(|tree| predict_batch_encrypted(ctx, tree, &sample).remove(0))
        .collect();

    match ctx.current_task() {
        Task::Regression => {
            // Homomorphic mean: sum the encrypted predictions, decrypt,
            // divide by W in public.
            let mut acc = per_tree[0].clone();
            for ct in &per_tree[1..] {
                acc = ctx.pk.add(&acc, ct);
            }
            ctx.metrics.add_ciphertext_ops(per_tree.len() as u64);
            let opened = joint_decrypt_vec(ctx, &[acc]).remove(0);
            decode_prediction(ctx, &opened, Task::Regression) / model.trees.len() as f64
        }
        Task::Classification { classes } => {
            // Convert each tree's encrypted label to shares, expand to
            // one-hot votes, tally, and take the secure maximum.
            let label_shares = crate::conversion::ciphers_to_shares(ctx, &per_tree);
            let mut tallies = vec![Share::ZERO; classes];
            for &label in &label_shares {
                let onehot = ctx.engine.onehot_vec(label, classes);
                for (k, vote) in onehot.into_iter().enumerate() {
                    tallies[k] = tallies[k] + vote;
                }
            }
            // Vote tallies are integers bounded by the tree count.
            let width = pivot_mpc::width_for_magnitude(model.trees.len() as u64);
            let (winner, _) = ctx.engine.argmax_bounded(&tallies, width);
            ctx.engine.open(winner).value() as f64
        }
    }
}

/// Batch RF prediction (loops [`predict_rf`] per sample for classification;
/// regression is aggregated in one homomorphic pass).
pub fn predict_rf_batch(
    ctx: &mut PartyContext<'_>,
    model: &RfModel,
    local_samples: &[Vec<f64>],
) -> Vec<f64> {
    match ctx.current_task() {
        Task::Regression => {
            let w = model.trees.len();
            let mut acc: Option<Vec<_>> = None;
            for tree in &model.trees {
                let preds = predict_batch_encrypted(ctx, tree, local_samples);
                acc = Some(match acc {
                    None => preds,
                    Some(prev) => prev
                        .iter()
                        .zip(&preds)
                        .map(|(a, b)| ctx.pk.add(a, b))
                        .collect(),
                });
            }
            let summed = acc.expect("at least one tree");
            let opened = joint_decrypt_vec(ctx, &summed);
            opened
                .iter()
                .map(|v| decode_prediction(ctx, v, Task::Regression) / w as f64)
                .collect()
        }
        Task::Classification { .. } => local_samples
            .iter()
            .map(|s| predict_rf(ctx, model, s))
            .collect(),
    }
}
