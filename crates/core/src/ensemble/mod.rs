//! Ensemble extensions of the basic protocol (§7): random forest and
//! gradient-boosted decision trees.

pub mod gbdt;
pub mod rf;

pub use gbdt::{predict_gbdt, predict_gbdt_batch, train_gbdt, GbdtModel, GbdtProtocolParams};
pub use rf::{predict_rf, predict_rf_batch, train_rf, RfModel, RfProtocolParams};
