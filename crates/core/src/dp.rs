//! Differentially private Pivot training (§9.2): the three per-node
//! queries — pruning-condition, non-leaf (best split), and leaf — are made
//! DP with secretly shared Laplace noise (Algorithm 5) and the secure
//! exponential mechanism (Algorithm 6). No client ever sees plaintext
//! noise; the released model is `B`-DP with `B = 2(h+1)·ε` (paper §9.2).

use crate::config::Protocol;
use crate::gain::{convert_stats, reveal_identifier, split_gains, NodeShares};
use crate::masks::{compute_label_masks, initial_mask, update_vectors_plain};
use crate::party::PartyContext;
use crate::stats::{pooled_statistics, LocalSplits, SplitLayout};
use pivot_data::Task;
use pivot_mpc::dp::{exponential_mechanism, laplace_sample_vec};
use pivot_mpc::{Fp, Share};
use pivot_trees::{DecisionTree, Node};

/// Differential-privacy parameters.
#[derive(Clone, Copy, Debug)]
pub struct DpParams {
    /// Budget `ε` per query; total budget is `2(h+1)·ε`.
    pub epsilon_per_query: f64,
}

impl DpParams {
    /// Total privacy budget for a depth-`h` tree.
    pub fn total_budget(&self, max_depth: usize) -> f64 {
        2.0 * (max_depth as f64 + 1.0) * self.epsilon_per_query
    }
}

/// Train a differentially private decision tree (basic protocol + §9.2).
pub fn train_dp(ctx: &mut PartyContext<'_>, dp: &DpParams) -> DecisionTree {
    assert_eq!(
        ctx.params.protocol,
        Protocol::Basic,
        "DP extends the basic protocol"
    );
    assert!(dp.epsilon_per_query > 0.0, "need a positive budget");
    let local = LocalSplits::precompute(ctx);
    let layout = SplitLayout::build(ctx.ep, &local.counts());
    let alpha = initial_mask(ctx, &vec![true; ctx.num_samples()]);
    let mut nodes = Vec::new();
    let root = build_node(ctx, &local, &layout, dp, alpha, 0, &mut nodes);
    DecisionTree::new(nodes, root, ctx.current_task())
}

fn build_node(
    ctx: &mut PartyContext<'_>,
    local: &LocalSplits,
    layout: &SplitLayout,
    dp: &DpParams,
    alpha: Vec<pivot_paillier::Ciphertext>,
    depth: usize,
    nodes: &mut Vec<Node>,
) -> usize {
    let masks = compute_label_masks(ctx, &alpha, true);
    let enc = pooled_statistics(ctx, layout, local, &alpha, &masks);
    let shares = convert_stats(ctx, layout, &enc);

    // DP pruning-condition query: Lap(Δ/ε) with Δ = 1 on the node count.
    let force = depth >= ctx.params.tree.max_depth || layout.total() == 0;
    let prune = force || {
        let noise =
            laplace_sample_vec(&mut ctx.engine, 0.0, 1.0 / dp.epsilon_per_query, 1).remove(0);
        // n̄ is integer-valued; lift to fixed-point before adding the noise.
        let f = ctx.params.fixed.frac_bits;
        let noisy = shares.n_total.scale(Fp::pow2(f)) + noise;
        let threshold = ctx.engine.constant_f64(ctx.params.tree.min_samples as f64);
        let below = ctx.engine.lt_vec(&[noisy], &[threshold]);
        ctx.engine.open(below[0]).value() == 1
    };
    if prune {
        let value = dp_leaf(ctx, dp, &shares);
        nodes.push(Node::Leaf { value });
        return nodes.len() - 1;
    }

    // DP non-leaf query: exponential mechanism over the gains (Δ = 2 for
    // Gini gain, per Friedman–Schuster).
    let gains = split_gains(ctx, &shares);
    let idx = exponential_mechanism(&mut ctx.engine, &gains, dp.epsilon_per_query, 2.0);
    let (winner, local_feature, split_idx) = reveal_identifier(ctx, layout, idx);

    let (feature_global, threshold) = if ctx.id() == winner {
        let feature_global = ctx.view.feature_indices[local_feature];
        let threshold = local.candidates[local_feature].thresholds[split_idx];
        ctx.ep.broadcast(&(feature_global, threshold));
        (feature_global, threshold)
    } else {
        ctx.ep.recv::<(usize, f64)>(winner)
    };
    let indicator =
        (ctx.id() == winner).then(|| local.indicators[local_feature][split_idx].clone());
    let vectors = vec![alpha];
    let (mut lefts, mut rights) = update_vectors_plain(ctx, &vectors, winner, indicator.as_deref());
    let alpha_l = lefts.remove(0);
    let alpha_r = rights.remove(0);

    let left = build_node(ctx, local, layout, dp, alpha_l, depth + 1, nodes);
    let right = build_node(ctx, local, layout, dp, alpha_r, depth + 1, nodes);
    nodes.push(Node::Internal {
        feature: feature_global,
        threshold,
        left,
        right,
    });
    nodes.len() - 1
}

/// DP leaf query: noisy class counts (Laplace, Δ = 1, parallel
/// composition across disjoint classes) before the secure argmax; noisy
/// mean for regression.
fn dp_leaf(ctx: &mut PartyContext<'_>, dp: &DpParams, shares: &NodeShares) -> f64 {
    let f = ctx.params.fixed.frac_bits;
    match ctx.current_task() {
        Task::Classification { .. } => {
            let noises = laplace_sample_vec(
                &mut ctx.engine,
                0.0,
                1.0 / dp.epsilon_per_query,
                shares.g_totals.len(),
            );
            let noisy: Vec<Share> = shares
                .g_totals
                .iter()
                .zip(noises)
                .map(|(&g, eta)| g.scale(Fp::pow2(f)) + eta)
                .collect();
            let (idx, _) = ctx.engine.argmax(&noisy);
            ctx.engine.open(idx).value() as f64
        }
        Task::Regression => {
            // Mean with Laplace noise scaled by the public sensitivity
            // bound 2/(min_samples·ε) (labels are normalized to [-1, 1]).
            let label = crate::gain::leaf_label_share(ctx, shares);
            let sens = 2.0 / (ctx.params.tree.min_samples.max(1) as f64);
            let noise =
                laplace_sample_vec(&mut ctx.engine, 0.0, sens / dp.epsilon_per_query, 1).remove(0);
            let noisy = label + noise;
            let opened = ctx.engine.open(noisy);
            ctx.params.fixed.decode(opened)
        }
    }
}
