//! Protocol cost accounting backing Table 2: counts of ciphertext
//! operations (`Ce`), threshold decryptions (`Cd`) and stage timers.
//! Secure-computation (`Cs`) and comparison (`Cc`) counts live in
//! [`pivot_mpc::OpCounters`].

use std::cell::RefCell;
use std::time::{Duration, Instant};

/// The three stages of every training iteration (§4.1) plus prediction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    LocalComputation,
    MpcComputation,
    ModelUpdate,
    Prediction,
}

/// Per-party protocol metrics. Uses interior mutability so read-heavy
/// protocol code can record without threading `&mut` everywhere.
#[derive(Debug, Default)]
pub struct ProtocolMetrics {
    inner: RefCell<Inner>,
}

/// Verification-plane counters (`counters.verification` in reports): how
/// many Σ-protocol proofs this party generated, checked, spot-skipped and
/// rejected, the proof bytes it put on the wire, and the wall time spent
/// proving + verifying.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct VerificationCounters {
    pub proofs_generated: u64,
    pub proofs_verified: u64,
    pub proofs_skipped: u64,
    pub proofs_rejected: u64,
    /// Bytes of proof material this party broadcast.
    pub proof_bytes: u64,
    /// Wall time spent generating and verifying proofs.
    pub wall: Duration,
}

#[derive(Debug, Default)]
struct Inner {
    encryptions: u64,
    ciphertext_ops: u64,
    threshold_decryptions: u64,
    stage_time: [Duration; 4],
    split_stat_ciphertexts: u64,
    packed_ciphertexts: u64,
    packed_values: u64,
    packed_slot_capacity: u64,
    stats_bytes_sent: u64,
    verification: VerificationCounters,
}

fn stage_slot(stage: Stage) -> usize {
    match stage {
        Stage::LocalComputation => 0,
        Stage::MpcComputation => 1,
        Stage::ModelUpdate => 2,
        Stage::Prediction => 3,
    }
}

impl ProtocolMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` fresh encryptions (`Ce`).
    pub fn add_encryptions(&self, n: u64) {
        self.inner.borrow_mut().encryptions += n;
    }

    /// Record `n` homomorphic ciphertext operations (`Ce`).
    pub fn add_ciphertext_ops(&self, n: u64) {
        self.inner.borrow_mut().ciphertext_ops += n;
    }

    /// Record `n` threshold decryptions (`Cd`).
    pub fn add_decryptions(&self, n: u64) {
        self.inner.borrow_mut().threshold_decryptions += n;
    }

    /// Record `n` pooled split-statistics ciphertexts for one node (the
    /// quantity ciphertext packing divides by the packing factor).
    pub fn add_split_stat_ciphertexts(&self, n: u64) {
        self.inner.borrow_mut().split_stat_ciphertexts += n;
    }

    /// Record a packed emission: `cts` ciphertexts of `capacity` slots
    /// each, carrying `values` plaintext values (occupancy = values /
    /// (cts·capacity)).
    pub fn add_packed(&self, cts: u64, values: u64, capacity: u64) {
        let mut inner = self.inner.borrow_mut();
        inner.packed_ciphertexts += cts;
        inner.packed_values += values;
        inner.packed_slot_capacity += cts * capacity;
    }

    /// Record bytes this party sent inside the split-statistics pipeline
    /// (pooling + Algorithm-2 conversion) — the traffic packing compresses.
    pub fn add_stats_bytes(&self, n: u64) {
        self.inner.borrow_mut().stats_bytes_sent += n;
    }

    /// Record generated proofs and the bytes they cost on the wire.
    pub fn add_proofs_generated(&self, n: u64, bytes: u64) {
        let mut inner = self.inner.borrow_mut();
        inner.verification.proofs_generated += n;
        inner.verification.proof_bytes += bytes;
    }

    /// Record the outcome of one verification pass: `verified` checked
    /// (of which `rejected` failed), `skipped` spot-skipped.
    pub fn add_proofs_checked(&self, verified: u64, skipped: u64, rejected: u64) {
        let mut inner = self.inner.borrow_mut();
        inner.verification.proofs_verified += verified;
        inner.verification.proofs_skipped += skipped;
        inner.verification.proofs_rejected += rejected;
    }

    /// Add wall time spent in the verification plane.
    pub fn add_verification_time(&self, d: Duration) {
        self.inner.borrow_mut().verification.wall += d;
    }

    /// Snapshot of the verification-plane counters.
    pub fn verification(&self) -> VerificationCounters {
        self.inner.borrow().verification
    }

    /// Time a closure under a stage bucket.
    pub fn time<T>(&self, stage: Stage, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.inner.borrow_mut().stage_time[stage_slot(stage)] += start.elapsed();
        out
    }

    /// Add externally measured time to a stage.
    pub fn add_time(&self, stage: Stage, d: Duration) {
        self.inner.borrow_mut().stage_time[stage_slot(stage)] += d;
    }

    pub fn encryptions(&self) -> u64 {
        self.inner.borrow().encryptions
    }

    pub fn ciphertext_ops(&self) -> u64 {
        self.inner.borrow().ciphertext_ops
    }

    pub fn threshold_decryptions(&self) -> u64 {
        self.inner.borrow().threshold_decryptions
    }

    pub fn split_stat_ciphertexts(&self) -> u64 {
        self.inner.borrow().split_stat_ciphertexts
    }

    /// `(ciphertexts, values, slot_capacity)` of the packed emissions.
    pub fn packed(&self) -> (u64, u64, u64) {
        let i = self.inner.borrow();
        (
            i.packed_ciphertexts,
            i.packed_values,
            i.packed_slot_capacity,
        )
    }

    pub fn stats_bytes_sent(&self) -> u64 {
        self.inner.borrow().stats_bytes_sent
    }

    pub fn stage_time(&self, stage: Stage) -> Duration {
        self.inner.borrow().stage_time[stage_slot(stage)]
    }

    /// One-line summary (used by the bench harnesses).
    pub fn summary(&self) -> String {
        let i = self.inner.borrow();
        format!(
            "Ce(enc)={} Ce(ops)={} Cd={} local={:?} mpc={:?} update={:?} predict={:?}",
            i.encryptions,
            i.ciphertext_ops,
            i.threshold_decryptions,
            i.stage_time[0],
            i.stage_time[1],
            i.stage_time[2],
            i.stage_time[3],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ProtocolMetrics::new();
        m.add_encryptions(3);
        m.add_encryptions(2);
        m.add_ciphertext_ops(10);
        m.add_decryptions(1);
        assert_eq!(m.encryptions(), 5);
        assert_eq!(m.ciphertext_ops(), 10);
        assert_eq!(m.threshold_decryptions(), 1);
    }

    #[test]
    fn stage_timer_records() {
        let m = ProtocolMetrics::new();
        let out = m.time(Stage::LocalComputation, || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(out, 42);
        assert!(m.stage_time(Stage::LocalComputation) >= Duration::from_millis(4));
        assert_eq!(m.stage_time(Stage::MpcComputation), Duration::ZERO);
    }

    #[test]
    fn summary_mentions_counts() {
        let m = ProtocolMetrics::new();
        m.add_decryptions(7);
        assert!(m.summary().contains("Cd=7"));
    }
}
