//! The MPC computation step (§4.1): convert pooled encrypted statistics to
//! shares (Algorithm 2), evaluate every split's impurity/variance gain
//! (Eqns 5–6) on shares, and select the best split with secure argmax.
//!
//! Scale discipline (DESIGN.md §8): class counts stay *integer-valued*
//! shares; reciprocals and label sums are fixed-point at scale `2^f`. The
//! gain pipeline is arranged so no intermediate exceeds `n²·2^f < p/2`:
//!
//! * classification: `gain_side = Σ_k (g_k · recip) · g_k`
//! * regression:     `gain_side = ((γ₁·recip)²) · n_side`
//!
//! Both equal the paper's gain up to a positive affine transform shared by
//! all splits of the node, so the argmax — and therefore the trained tree —
//! is identical.

use crate::conversion::ciphers_to_shares;
use crate::metrics::Stage;
use crate::party::PartyContext;
use crate::stats::{EncryptedStats, PackedStats, SplitLayout};
use pivot_data::Task;
use pivot_mpc::{width_for_magnitude, Fp, Share};

/// Comparison width covering integer node counts (`|v| ≤ n`).
fn count_width(ctx: &PartyContext<'_>) -> u32 {
    width_for_magnitude(ctx.num_samples() as u64)
}

/// Comparison width covering pairwise *differences* of gated gains: valid
/// gains live in `(−2, n + 1]·2^f` and invalid ones are pinned to `−2^f`,
/// so `|a − b| ≤ (n + 2)·2^f < 2^(f + width(n) + 1)`.
///
/// The `(n + 1)·2^f` gain bound rests on the ±1 normalized-label
/// contract. GBDT residual trees (`task_override` set) train on
/// residuals that can exceed it (up to `(1 + lr)^round`), so their gain
/// argmax keeps the full fixed-point width — the same conservative gate
/// PR-4 applies to packing residual labels.
fn gain_width(ctx: &PartyContext<'_>) -> u32 {
    if ctx.task_override.is_some() {
        return ctx.params.fixed.int_bits;
    }
    ctx.params.fixed.frac_bits + count_width(ctx) + 1
}

/// Share-domain statistics of one tree node.
pub struct NodeShares {
    /// Per split: `⟨n_l⟩` (integer-valued).
    pub n_l: Vec<Share>,
    /// Per label-vector, per split: `⟨g_l⟩` (integer counts for
    /// classification, fixed-point sums for regression).
    pub g_l: Vec<Vec<Share>>,
    /// `⟨n̄⟩` — node size (integer-valued).
    pub n_total: Share,
    /// `⟨Σ γ_k⟩` per label vector.
    pub g_totals: Vec<Share>,
}

/// Flatten one node's pooled statistics into the conversion order
/// ([`convert_stats`]' layout: per-split stride chunks, then the totals
/// tail).
fn stats_flat(enc: &EncryptedStats, layout: &SplitLayout) -> Vec<pivot_paillier::Ciphertext> {
    let stride = enc.gamma_totals.len() + 1;
    let mut flat = Vec::with_capacity(layout.total() * stride + stride);
    for split in &enc.per_split {
        flat.extend(split.iter().cloned());
    }
    flat.push(enc.node_total.clone());
    flat.extend(enc.gamma_totals.iter().cloned());
    flat
}

/// Reassemble one node's [`NodeShares`] from the flat conversion shares
/// (inverse of [`stats_flat`]'s ordering) and undo the regression offset.
fn node_shares_from_flat(
    ctx: &PartyContext<'_>,
    layout: &SplitLayout,
    enc: &EncryptedStats,
    shares: &[Share],
) -> NodeShares {
    let stride = enc.gamma_totals.len() + 1;
    let gammas = stride - 1;
    let mut n_l = Vec::with_capacity(layout.total());
    let mut g_l: Vec<Vec<Share>> = vec![Vec::with_capacity(layout.total()); gammas];
    for (s, chunk) in shares[..layout.total() * stride].chunks(stride).enumerate() {
        debug_assert_eq!(s < layout.total(), true);
        n_l.push(chunk[0]);
        for (k, row) in g_l.iter_mut().enumerate() {
            row.push(chunk[1 + k]);
        }
    }
    let tail = &shares[layout.total() * stride..];
    let mut node = NodeShares {
        n_l,
        g_l,
        n_total: tail[0],
        g_totals: tail[1..].to_vec(),
    };
    if enc.offset_encoded {
        remove_label_offset(ctx, &mut node);
    }
    node
}

/// Convert the pooled encrypted statistics into shares in one batched
/// Algorithm-2 invocation.
pub fn convert_stats(
    ctx: &mut PartyContext<'_>,
    layout: &SplitLayout,
    enc: &EncryptedStats,
) -> NodeShares {
    let flat = stats_flat(enc, layout);
    let started = std::time::Instant::now();
    let shares = ciphers_to_shares(ctx, &flat);
    ctx.metrics
        .add_time(Stage::MpcComputation, started.elapsed());
    node_shares_from_flat(ctx, layout, enc, &shares)
}

/// Convert every frontier node's pooled statistics in **one** Algorithm-2
/// invocation (the scalar counterpart of the packed level-wise
/// `conversion_batch`): all flats concatenate, a single
/// [`ciphers_to_shares`] covers the level, and each node's span
/// reassembles exactly like [`convert_stats`].
pub fn convert_stats_batch(
    ctx: &mut PartyContext<'_>,
    layout: &SplitLayout,
    encs: &[&EncryptedStats],
) -> Vec<NodeShares> {
    let flats: Vec<Vec<pivot_paillier::Ciphertext>> =
        encs.iter().map(|enc| stats_flat(enc, layout)).collect();
    let all: Vec<pivot_paillier::Ciphertext> = flats.iter().flatten().cloned().collect();
    let started = std::time::Instant::now();
    let shares = ciphers_to_shares(ctx, &all);
    ctx.metrics
        .add_time(Stage::MpcComputation, started.elapsed());
    let mut out = Vec::with_capacity(encs.len());
    let mut at = 0;
    for (enc, flat) in encs.iter().zip(&flats) {
        out.push(node_shares_from_flat(
            ctx,
            layout,
            enc,
            &shares[at..at + flat.len()],
        ));
        at += flat.len();
    }
    out
}

/// Reassemble one node's [`NodeShares`] from the slot shares of its packed
/// conversion ciphertexts (`shares[i]` aligned with the node's
/// `stats::conversion_batch` order: chunk-major groups, then
/// per-chunk totals). Applies the regression offset correction like
/// [`convert_stats`].
pub fn node_shares_from_packed(
    ctx: &PartyContext<'_>,
    layout: &SplitLayout,
    packed: &PackedStats,
    shares: &[Vec<Share>],
) -> NodeShares {
    let chunking = &packed.chunking;
    let gammas = chunking.stride - 1;
    let total = layout.total();
    let mut n_l = vec![Share::ZERO; total];
    let mut g_l: Vec<Vec<Share>> = vec![vec![Share::ZERO; total]; gammas];
    let mut n_total = Share::ZERO;
    let mut g_totals = vec![Share::ZERO; gammas];

    let mut idx = 0;
    for (c, chunk_groups) in packed.groups.iter().enumerate() {
        let width = chunking.widths[c];
        let base = c * chunking.chunk_width;
        let mut split_base = 0usize;
        for (g, _) in chunk_groups.iter().enumerate() {
            let slot_shares = &shares[idx];
            idx += 1;
            let size = packed.group_sizes[g];
            assert_eq!(slot_shares.len(), size * width, "packed share shape");
            for t in 0..size {
                let split = split_base + t;
                for off in 0..width {
                    let stride_idx = base + off;
                    let share = slot_shares[t * width + off];
                    if stride_idx == 0 {
                        n_l[split] = share;
                    } else {
                        g_l[stride_idx - 1][split] = share;
                    }
                }
            }
            split_base += size;
        }
        assert_eq!(split_base, total, "groups cover every split");
    }
    for (c, _) in packed.totals.iter().enumerate() {
        let width = chunking.widths[c];
        let base = c * chunking.chunk_width;
        let slot_shares = &shares[idx];
        idx += 1;
        for off in 0..width {
            let stride_idx = base + off;
            if stride_idx == 0 {
                n_total = slot_shares[off];
            } else {
                g_totals[stride_idx - 1] = slot_shares[off];
            }
        }
    }
    assert_eq!(idx, shares.len(), "consumed every conversion ciphertext");

    let mut node = NodeShares {
        n_l,
        g_l,
        n_total,
        g_totals,
    };
    if packed.offset_encoded {
        remove_label_offset(ctx, &mut node);
    }
    node
}

/// Totals-only offset correction for depth-forced leaves (no per-split
/// statistics present).
pub fn remove_totals_offset(ctx: &PartyContext<'_>, node: &mut NodeShares) {
    let one_fx = ctx.params.fixed.one();
    let n_fx = node.n_total.scale(one_fx);
    let g1 = node.g_totals[0] - n_fx;
    let g2 = node.g_totals[1] - g1.scale(Fp::new(2)) - n_fx;
    node.g_totals[0] = g1;
    node.g_totals[1] = g2;
}

/// Undo the +1 regression-label offset after conversion (linear):
/// `γ₁ = γ₁' − n·1` and `γ₂ = γ₂' − 2·γ₁ − n·1`, where `1` is the
/// fixed-point unit `2^f`.
fn remove_label_offset(ctx: &PartyContext<'_>, node: &mut NodeShares) {
    let one_fx = ctx.params.fixed.one();
    debug_assert_eq!(node.g_l.len(), 2, "regression carries two moments");
    for s in 0..node.n_l.len() {
        let n_fx = node.n_l[s].scale(one_fx);
        let g1 = node.g_l[0][s] - n_fx;
        let g2 = node.g_l[1][s] - g1.scale(Fp::new(2)) - n_fx;
        node.g_l[0][s] = g1;
        node.g_l[1][s] = g2;
    }
    let n_fx = node.n_total.scale(one_fx);
    let g1 = node.g_totals[0] - n_fx;
    let g2 = node.g_totals[1] - g1.scale(Fp::new(2)) - n_fx;
    node.g_totals[0] = g1;
    node.g_totals[1] = g2;
}

/// Evaluate the gain of every split (scale `2^f`), with invalid splits
/// (an empty side) pinned to `-1`.
pub fn split_gains(ctx: &mut PartyContext<'_>, shares: &NodeShares) -> Vec<Share> {
    let n_splits = shares.n_l.len();
    if n_splits == 0 {
        return Vec::new();
    }
    let n_bound = ctx.num_samples() as f64;
    let task = ctx.current_task();
    let party = ctx.id();
    let one_fx = ctx.params.fixed.one();
    let counts_k = count_width(ctx);

    ctx.metrics.time(Stage::MpcComputation, || {
        let engine = &mut ctx.engine;
        // Right-side counts and sums by subtraction from totals.
        let n_r: Vec<Share> = shares.n_l.iter().map(|&l| shares.n_total - l).collect();
        let g_r: Vec<Vec<Share>> = shares
            .g_l
            .iter()
            .enumerate()
            .map(|(k, row)| row.iter().map(|&l| shares.g_totals[k] - l).collect())
            .collect();

        // Reciprocals of both side sizes in one batch. The sides are
        // integer-valued counts, so the normalization comparisons run in
        // the integer domain (`⌈log₂ n⌉`-bit widths instead of
        // `f + ⌈log₂ n⌉`).
        let mut sides_int: Vec<Share> = Vec::with_capacity(2 * n_splits);
        sides_int.extend(shares.n_l.iter().copied());
        sides_int.extend(n_r.iter().copied());
        let recips = engine.recip_vec_int(&sides_int, n_bound);
        let (recip_l, recip_r) = recips.split_at(n_splits);

        let gains_raw: Vec<Share> = match task {
            Task::Classification { .. } => {
                // p = g·recip (scale f), term = p·g (scale f); batch both
                // sides and all classes into two multiplication rounds.
                let classes = shares.g_l.len();
                let mut gs = Vec::with_capacity(2 * classes * n_splits);
                let mut rs = Vec::with_capacity(2 * classes * n_splits);
                for k in 0..classes {
                    for s in 0..n_splits {
                        gs.push(shares.g_l[k][s]);
                        rs.push(recip_l[s]);
                    }
                    for s in 0..n_splits {
                        gs.push(g_r[k][s]);
                        rs.push(recip_r[s]);
                    }
                }
                let ps = engine.mul_vec(&gs, &rs);
                let terms = engine.mul_vec(&ps, &gs);
                let mut gains = vec![Share::ZERO; n_splits];
                for k in 0..classes {
                    let base = 2 * k * n_splits;
                    for s in 0..n_splits {
                        gains[s] = gains[s] + terms[base + s] + terms[base + n_splits + s];
                    }
                }
                gains
            }
            Task::Regression => {
                // mean = γ₁·recip (fixmul), gain_side = mean²·n_side.
                let mut g1 = shares.g_l[0].clone();
                g1.extend(g_r[0].iter().copied());
                let mut recs = recip_l.to_vec();
                recs.extend_from_slice(recip_r);
                let means = engine.fixmul_vec(&g1, &recs);
                let m2 = engine.fixmul_vec(&means, &means);
                let mut counts = shares.n_l.clone();
                counts.extend(n_r.iter().copied());
                let terms = engine.mul_vec(&m2, &counts);
                (0..n_splits)
                    .map(|s| terms[s] + terms[n_splits + s])
                    .collect()
            }
        };

        // Validity: both sides non-empty. a = 1[n_l = 0], b = 1[n_r = 0];
        // they cannot both be 1 (the node is non-empty), so
        // valid = 1 − a − b is linear.
        let mut sides = Vec::with_capacity(2 * n_splits);
        sides.extend(shares.n_l.iter().map(|s| s.sub_public(party, Fp::ONE)));
        sides.extend(n_r.iter().map(|s| s.sub_public(party, Fp::ONE)));
        // Side counts are integers in [0, n]: the zero tests only need
        // count-width comparisons, not the full fixed-point layout.
        let zero_flags = engine.ltz_vec_bounded(&sides, counts_k);
        let valid: Vec<Share> = (0..n_splits)
            .map(|s| Share::from_public(party, Fp::ONE) - zero_flags[s] - zero_flags[n_splits + s])
            .collect();

        // gain_final = valid·(gain + 1) − 1 (scale f): invalid ⇒ −1.
        let shifted: Vec<Share> = gains_raw
            .iter()
            .map(|&g| g.add_public(party, one_fx))
            .collect();
        let gated = engine.mul_vec(&valid, &shifted);
        gated
            .into_iter()
            .map(|g| g.sub_public(party, one_fx))
            .collect()
    })
}

/// Secure argmax over the gains; returns `(⟨global split index⟩, ⟨gain⟩)`.
pub fn best_split(ctx: &mut PartyContext<'_>, gains: &[Share]) -> (Share, Share) {
    let k = gain_width(ctx);
    ctx.metrics.time(Stage::MpcComputation, || {
        ctx.engine.argmax_bounded(gains, k)
    })
}

/// Basic protocol: open the winning index and map it to the public
/// identifier `(i*, j*, s*)`.
pub fn reveal_identifier(
    ctx: &mut PartyContext<'_>,
    layout: &SplitLayout,
    idx: Share,
) -> (usize, usize, usize) {
    let opened = ctx.engine.open(idx).value() as usize;
    layout.locate(opened)
}

/// Enhanced protocol: reveal only the winning `(i*, j*)` block; `⟨s*⟩`
/// stays secret. One batched comparison against the public block
/// boundaries, then the boundary bits are opened (they reveal exactly the
/// block, nothing else).
pub fn reveal_block_only(
    ctx: &mut PartyContext<'_>,
    layout: &SplitLayout,
    idx: Share,
) -> (usize, usize, Share) {
    let party = ctx.id();
    // Block start offsets in global order.
    let mut blocks = Vec::new();
    for (client, row) in layout.counts.iter().enumerate() {
        for feature in 0..row.len() {
            if row[feature] > 0 {
                blocks.push((client, feature, layout.block(client, feature)));
            }
        }
    }
    // b_t = 1[idx < start_t] for every block start (skip the first: always 0).
    let diffs: Vec<Share> = blocks
        .iter()
        .skip(1)
        .map(|&(_, _, (start, _))| idx.sub_public(party, Fp::new(start as u64)))
        .collect();
    // idx and every block start lie in [0, total splits].
    let k = width_for_magnitude(layout.total() as u64);
    let bits = ctx.engine.ltz_vec_bounded(&diffs, k);
    let opened = ctx.engine.open_vec(&bits);
    // The winning block is the last one whose start ≤ idx.
    let mut winner = 0usize;
    for (t, bit) in opened.iter().enumerate() {
        if bit.value() == 0 {
            winner = t + 1;
        }
    }
    let (client, feature, (start, _)) = blocks[winner];
    let s_star = idx.sub_public(party, Fp::new(start as u64));
    (client, feature, s_star)
}

/// Secure leaf label: argmax class (classification, integer share) or mean
/// label (regression, fixed-point share).
pub fn leaf_label_share(ctx: &mut PartyContext<'_>, shares: &NodeShares) -> Share {
    let n_bound = ctx.num_samples() as f64;
    let task = ctx.current_task();
    let counts_k = count_width(ctx);
    ctx.metrics.time(Stage::MpcComputation, || match task {
        // Class counts are integers in [0, n]: count-width argmax.
        Task::Classification { .. } => ctx.engine.argmax_bounded(&shares.g_totals, counts_k).0,
        Task::Regression => {
            let recip = ctx.engine.recip_vec_int(&[shares.n_total], n_bound);
            ctx.engine.fixmul_vec(&[shares.g_totals[0]], &[recip[0]])[0]
        }
    })
}

// ---------------------------------------------------------------------
// Level-batched variants (pipelined scheduling)
//
// Each helper runs one protocol stage for a whole tree-level frontier in
// the rounds of a single node: lanes of every node concatenate into one
// comparison/multiplication batch, and final openings queue through the
// engine's deferred-open API so independent results settle together.
// Values are identical to looping the per-node functions — comparisons
// and Beaver multiplications are exact regardless of batching, so every
// argmax and prune bit matches the sequential schedule.
// ---------------------------------------------------------------------

/// Batched [`prune_decision`]: one comparison unit and one opening round
/// for the entire frontier (small tests, and — when `check_purity` —
/// purity maxima in a lockstep tournament sharing the same rounds).
pub fn prune_decisions_batch(
    ctx: &mut PartyContext<'_>,
    nodes: &[&NodeShares],
    check_purity: bool,
) -> Vec<bool> {
    if nodes.is_empty() {
        return Vec::new();
    }
    let party = ctx.id();
    let min_samples = ctx.params.tree.min_samples as u64;
    let is_classification = matches!(ctx.current_task(), Task::Classification { .. });
    let counts_k = width_for_magnitude((ctx.num_samples() as u64).max(min_samples));
    let purity = check_purity && is_classification;
    ctx.metrics.time(Stage::MpcComputation, || {
        let engine = &mut ctx.engine;
        let maxes = if purity {
            let rows: Vec<Vec<Share>> = nodes.iter().map(|n| n.g_totals.clone()).collect();
            engine
                .argmax_many_bounded(&rows, counts_k)
                .into_iter()
                .map(|(_, max)| max)
                .collect()
        } else {
            Vec::new()
        };
        // One mixed batch: every node's small test, then every purity test.
        let mut lanes: Vec<Share> = nodes
            .iter()
            .map(|n| n.n_total.sub_public(party, Fp::new(min_samples)))
            .collect();
        if purity {
            lanes.extend(
                nodes
                    .iter()
                    .zip(&maxes)
                    .map(|(n, &max)| (n.n_total - max).sub_public(party, Fp::ONE)),
            );
        }
        let bits = engine.ltz_vec_bounded(&lanes, counts_k);
        let decisions: Vec<Share> = if purity {
            // stop = small ∨ pure, one multiplication round for the level.
            let smalls = &bits[..nodes.len()];
            let pures = &bits[nodes.len()..];
            let prods = engine.mul_vec(smalls, pures);
            (0..nodes.len())
                .map(|i| smalls[i] + pures[i] - prods[i])
                .collect()
        } else {
            bits
        };
        engine
            .open_vec(&decisions)
            .iter()
            .map(|v| v.value() == 1)
            .collect()
    })
}

/// Batched [`split_gains`]: the reciprocal pipeline, gain multiplications,
/// validity tests, and gating of every frontier node concatenate into the
/// per-stage batches of one node. Within-node lane order matches the
/// scalar function, so per-lane values agree up to the shared truncation
/// semantics.
pub fn split_gains_batch(ctx: &mut PartyContext<'_>, nodes: &[&NodeShares]) -> Vec<Vec<Share>> {
    if nodes.is_empty() {
        return Vec::new();
    }
    let n_bound = ctx.num_samples() as f64;
    let task = ctx.current_task();
    let party = ctx.id();
    let one_fx = ctx.params.fixed.one();
    let counts_k = count_width(ctx);
    let splits_per_node: Vec<usize> = nodes.iter().map(|n| n.n_l.len()).collect();
    let lanes: usize = splits_per_node.iter().sum();

    ctx.metrics.time(Stage::MpcComputation, || {
        let engine = &mut ctx.engine;
        // Per node: right sides by subtraction, lanes node-major.
        let n_r: Vec<Vec<Share>> = nodes
            .iter()
            .map(|n| n.n_l.iter().map(|&l| n.n_total - l).collect())
            .collect();
        let g_r: Vec<Vec<Vec<Share>>> = nodes
            .iter()
            .map(|n| {
                n.g_l
                    .iter()
                    .enumerate()
                    .map(|(k, row)| row.iter().map(|&l| n.g_totals[k] - l).collect())
                    .collect()
            })
            .collect();

        // One reciprocal pipeline over every side of every node.
        let mut sides_int: Vec<Share> = Vec::with_capacity(2 * lanes);
        for (node, rights) in nodes.iter().zip(&n_r) {
            sides_int.extend(node.n_l.iter().copied());
            sides_int.extend(rights.iter().copied());
        }
        let recips = engine.recip_vec_int(&sides_int, n_bound);

        let mut gains_raw: Vec<Vec<Share>> = Vec::with_capacity(nodes.len());
        match task {
            Task::Classification { .. } => {
                let mut gs = Vec::new();
                let mut rs = Vec::new();
                let mut at = 0;
                for (i, node) in nodes.iter().enumerate() {
                    let n_splits = splits_per_node[i];
                    let (recip_l, recip_r) = recips[at..at + 2 * n_splits].split_at(n_splits);
                    at += 2 * n_splits;
                    for k in 0..node.g_l.len() {
                        for s in 0..n_splits {
                            gs.push(node.g_l[k][s]);
                            rs.push(recip_l[s]);
                        }
                        for s in 0..n_splits {
                            gs.push(g_r[i][k][s]);
                            rs.push(recip_r[s]);
                        }
                    }
                }
                let ps = engine.mul_vec(&gs, &rs);
                let terms = engine.mul_vec(&ps, &gs);
                let mut base = 0;
                for (i, node) in nodes.iter().enumerate() {
                    let n_splits = splits_per_node[i];
                    let classes = node.g_l.len();
                    let mut gains = vec![Share::ZERO; n_splits];
                    for k in 0..classes {
                        let row = base + 2 * k * n_splits;
                        for (s, gain) in gains.iter_mut().enumerate() {
                            *gain = *gain + terms[row + s] + terms[row + n_splits + s];
                        }
                    }
                    base += 2 * classes * n_splits;
                    gains_raw.push(gains);
                }
            }
            Task::Regression => {
                let mut g1 = Vec::with_capacity(2 * lanes);
                let mut recs = Vec::with_capacity(2 * lanes);
                let mut counts = Vec::with_capacity(2 * lanes);
                let mut at = 0;
                for (i, node) in nodes.iter().enumerate() {
                    let n_splits = splits_per_node[i];
                    g1.extend(node.g_l[0].iter().copied());
                    g1.extend(g_r[i][0].iter().copied());
                    recs.extend_from_slice(&recips[at..at + 2 * n_splits]);
                    counts.extend(node.n_l.iter().copied());
                    counts.extend(n_r[i].iter().copied());
                    at += 2 * n_splits;
                }
                let means = engine.fixmul_vec(&g1, &recs);
                let m2 = engine.fixmul_vec(&means, &means);
                let terms = engine.mul_vec(&m2, &counts);
                let mut at = 0;
                for &n_splits in &splits_per_node {
                    gains_raw.push(
                        (0..n_splits)
                            .map(|s| terms[at + s] + terms[at + n_splits + s])
                            .collect(),
                    );
                    at += 2 * n_splits;
                }
            }
        }

        // Validity lanes of every node in one zero-test batch.
        let mut sides = Vec::with_capacity(2 * lanes);
        for (node, rights) in nodes.iter().zip(&n_r) {
            sides.extend(node.n_l.iter().map(|s| s.sub_public(party, Fp::ONE)));
            sides.extend(rights.iter().map(|s| s.sub_public(party, Fp::ONE)));
        }
        let zero_flags = engine.ltz_vec_bounded(&sides, counts_k);
        let mut shifted = Vec::with_capacity(lanes);
        let mut valid = Vec::with_capacity(lanes);
        let mut at = 0;
        for (i, gains) in gains_raw.iter().enumerate() {
            let n_splits = splits_per_node[i];
            for (s, &g) in gains.iter().enumerate() {
                valid.push(
                    Share::from_public(party, Fp::ONE)
                        - zero_flags[at + s]
                        - zero_flags[at + n_splits + s],
                );
                shifted.push(g.add_public(party, one_fx));
            }
            at += 2 * n_splits;
        }
        let gated = engine.mul_vec(&valid, &shifted);
        let mut out = Vec::with_capacity(nodes.len());
        let mut at = 0;
        for &n_splits in &splits_per_node {
            out.push(
                gated[at..at + n_splits]
                    .iter()
                    .map(|g| g.sub_public(party, one_fx))
                    .collect(),
            );
            at += n_splits;
        }
        out
    })
}

/// Batched [`best_split`]: every frontier node's argmax ladder runs in
/// lockstep (shared comparison rounds, all-pairs tail).
pub fn best_split_batch(ctx: &mut PartyContext<'_>, gains: &[Vec<Share>]) -> Vec<(Share, Share)> {
    if gains.is_empty() {
        return Vec::new();
    }
    let k = gain_width(ctx);
    ctx.metrics.time(Stage::MpcComputation, || {
        ctx.engine.argmax_many_bounded(gains, k)
    })
}

/// Batched [`leaf_label_share`]: one lockstep argmax (classification) or
/// one reciprocal/multiply batch (regression) for every leaf of a level.
pub fn leaf_label_shares_batch(ctx: &mut PartyContext<'_>, nodes: &[&NodeShares]) -> Vec<Share> {
    if nodes.is_empty() {
        return Vec::new();
    }
    let n_bound = ctx.num_samples() as f64;
    let task = ctx.current_task();
    let counts_k = count_width(ctx);
    ctx.metrics.time(Stage::MpcComputation, || match task {
        Task::Classification { .. } => {
            let rows: Vec<Vec<Share>> = nodes.iter().map(|n| n.g_totals.clone()).collect();
            ctx.engine
                .argmax_many_bounded(&rows, counts_k)
                .into_iter()
                .map(|(idx, _)| idx)
                .collect()
        }
        Task::Regression => {
            let totals: Vec<Share> = nodes.iter().map(|n| n.n_total).collect();
            let recips = ctx.engine.recip_vec_int(&totals, n_bound);
            let g1: Vec<Share> = nodes.iter().map(|n| n.g_totals[0]).collect();
            ctx.engine.fixmul_vec(&g1, &recips)
        }
    })
}

/// Batched [`reveal_block_only`]: the boundary comparisons of every
/// winner concatenate into one bounded batch and their bits open in one
/// round; each `⟨s*⟩` stays secret.
pub fn reveal_blocks_batch(
    ctx: &mut PartyContext<'_>,
    layout: &SplitLayout,
    idxs: &[Share],
) -> Vec<(usize, usize, Share)> {
    if idxs.is_empty() {
        return Vec::new();
    }
    let party = ctx.id();
    let mut blocks = Vec::new();
    for (client, row) in layout.counts.iter().enumerate() {
        for feature in 0..row.len() {
            if row[feature] > 0 {
                blocks.push((client, feature, layout.block(client, feature)));
            }
        }
    }
    let per_node = blocks.len() - 1;
    let mut diffs = Vec::with_capacity(idxs.len() * per_node);
    for &idx in idxs {
        diffs.extend(
            blocks
                .iter()
                .skip(1)
                .map(|&(_, _, (start, _))| idx.sub_public(party, Fp::new(start as u64))),
        );
    }
    let k = width_for_magnitude(layout.total() as u64);
    let bits = ctx.engine.ltz_vec_bounded(&diffs, k);
    let opened = ctx.engine.open_vec(&bits);
    idxs.iter()
        .enumerate()
        .map(|(i, &idx)| {
            let mut winner = 0usize;
            for (t, bit) in opened[i * per_node..(i + 1) * per_node].iter().enumerate() {
                if bit.value() == 0 {
                    winner = t + 1;
                }
            }
            let (client, feature, (start, _)) = blocks[winner];
            let s_star = idx.sub_public(party, Fp::new(start as u64));
            (client, feature, s_star)
        })
        .collect()
}

/// Secure pruning decision (opened bit): node too small, or — basic
/// protocol only — pure.
pub fn prune_decision(ctx: &mut PartyContext<'_>, shares: &NodeShares, check_purity: bool) -> bool {
    let party = ctx.id();
    let min_samples = ctx.params.tree.min_samples as u64;
    let is_classification = matches!(ctx.current_task(), Task::Classification { .. });
    // All operands are integer counts bounded by max(n, min_samples).
    let counts_k = width_for_magnitude((ctx.num_samples() as u64).max(min_samples));
    ctx.metrics.time(Stage::MpcComputation, || {
        let small = {
            let diff = shares.n_total.sub_public(party, Fp::new(min_samples));
            ctx.engine.ltz_vec_bounded(&[diff], counts_k)[0]
        };
        let decision = if check_purity && is_classification {
            // pure ⟺ max_k g_k = n̄ ⟺ (n̄ − max) − 1 < 0.
            let max = ctx.engine.max_vec_bounded(&shares.g_totals, counts_k);
            let diff = (shares.n_total - max).sub_public(party, Fp::ONE);
            let pure = ctx.engine.ltz_vec_bounded(&[diff], counts_k)[0];
            // stop = small ∨ pure = small + pure − small·pure.
            let prod = ctx.engine.mul(small, pure);
            small + pure - prod
        } else {
            small
        };
        ctx.engine.open(decision).value() == 1
    })
}
