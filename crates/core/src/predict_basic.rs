//! Algorithm 4 — distributed prediction on the plaintext model (basic
//! protocol, §4.3): the clients update an encrypted path-indicator vector
//! `[η]` in a round-robin ring, the first client dot-products it with the
//! leaf-label vector `z`, and the result is jointly decrypted. Nothing but
//! the final prediction is revealed — in particular, not the path taken.

use crate::decrypt::joint_decrypt_vec;
use crate::masks::encode_signed;
use crate::metrics::Stage;
use crate::party::PartyContext;
use crate::verify;
use pivot_bignum::BigUint;
use pivot_data::Task;
use pivot_paillier::{batch, vector, Ciphertext};
use pivot_trees::DecisionTree;

/// Jointly predict one sample. `local_sample` holds this client's local
/// feature values (in local feature order); returns the plaintext label.
pub fn predict(ctx: &mut PartyContext<'_>, tree: &DecisionTree, local_sample: &[f64]) -> f64 {
    predict_batch(ctx, tree, std::slice::from_ref(&local_sample.to_vec()))[0]
}

/// Batched Algorithm 4: one ring pass carries every sample's `[η]` vector.
pub fn predict_batch(
    ctx: &mut PartyContext<'_>,
    tree: &DecisionTree,
    local_samples: &[Vec<f64>],
) -> Vec<f64> {
    let enc = predict_batch_encrypted(ctx, tree, local_samples);
    let opened = joint_decrypt_vec(ctx, &enc);
    let task = ctx.current_task();
    opened
        .iter()
        .map(|v| decode_prediction(ctx, v, task))
        .collect()
}

/// Algorithm 4 up to (but not including) the final decryption — the GBDT
/// extension consumes the *encrypted* per-sample predictions (§7.2).
pub fn predict_batch_encrypted(
    ctx: &mut PartyContext<'_>,
    tree: &DecisionTree,
    local_samples: &[Vec<f64>],
) -> Vec<Ciphertext> {
    let started = std::time::Instant::now();
    let result = {
        let m = ctx.parties();
        let me = ctx.id();
        let paths = tree.leaf_paths();
        let n_leaves = paths.len();
        let n_samples = local_samples.len();

        // My per-sample, per-leaf consistency bits: a leaf stays possible
        // unless one of MY internal nodes on its path contradicts my value.
        let my_bits: Vec<Vec<bool>> = local_samples
            .iter()
            .map(|sample| {
                paths
                    .iter()
                    .map(|(_, path)| {
                        path.iter().all(|&(feature, threshold, went_left)| {
                            if ctx.feature_owners[feature] != me {
                                return true;
                            }
                            let local_idx = ctx
                                .view
                                .feature_indices
                                .iter()
                                .position(|&g| g == feature)
                                .expect("owner has the feature");
                            let goes_left = sample[local_idx] <= threshold;
                            goes_left == went_left
                        })
                    })
                    .collect()
            })
            .collect();

        // Ring pass from party m−1 down to 0 (paper's u_m → u_1). With
        // verification on, my flattened η contribution, the proof bundle
        // over it, and the upstream transfer are kept for the
        // verification passes after the ring completes.
        let verification = ctx.verify.is_some();
        let threads = ctx.crypto_threads();
        let mut my_flat: Vec<Ciphertext> = Vec::new();
        let mut received_flat: Vec<Ciphertext> = Vec::new();
        let mut popk_bundle = None;
        let mut popcm_bundle = None;
        let mut eta: Vec<Vec<Ciphertext>> = if me == m - 1 {
            // Initialize [η] = ([1],…,[1]) masked by my own bits. Batched
            // over the flattened (sample-major) layout — the same nonce
            // draw order as the per-element serial loop.
            let values: Vec<BigUint> = my_bits
                .iter()
                .flatten()
                .map(|&b| BigUint::from_u64(u64::from(b)))
                .collect();
            verify::scrub_witnesses(ctx);
            let mut flat = batch::encrypt_batch(&ctx.pk, &values, &ctx.nonces, threads);
            popk_bundle = verify::prove_popk(ctx, "predict", &mut flat, &values);
            ctx.metrics.add_encryptions((n_samples * n_leaves) as u64);
            let out = flat
                .chunks(n_leaves.max(1))
                .map(<[Ciphertext]>::to_vec)
                .collect();
            if verification {
                my_flat = flat;
            }
            out
        } else {
            // Receive from the next-higher party and apply my mask.
            let received: Vec<Vec<Ciphertext>> =
                (0..n_samples).map(|_| ctx.ep.recv(me + 1)).collect();
            verify::scrub_witnesses(ctx);
            let mut flat: Vec<Ciphertext> = Vec::with_capacity(n_samples * n_leaves);
            for (cts, bits) in received.iter().zip(&my_bits) {
                flat.extend(batch::mask_binary_batch(
                    &ctx.pk,
                    cts,
                    bits,
                    &ctx.nonces,
                    threads,
                ));
            }
            ctx.metrics.add_encryptions((n_samples * n_leaves) as u64);
            if verification {
                received_flat = received.into_iter().flatten().collect();
                let xs: Vec<BigUint> = my_bits
                    .iter()
                    .flatten()
                    .map(|&b| BigUint::from_u64(u64::from(b)))
                    .collect();
                popcm_bundle = verify::prove_popcm(ctx, "predict", &received_flat, &mut flat, &xs);
            }
            let out = flat
                .chunks(n_leaves.max(1))
                .map(<[Ciphertext]>::to_vec)
                .collect();
            if verification {
                my_flat = flat;
            }
            out
        };

        let z: Vec<BigUint> = paths
            .iter()
            .map(|&(value, _)| encode_leaf(ctx, value))
            .collect();
        let outputs: Vec<Ciphertext> = if me > 0 {
            for sample_eta in &eta {
                ctx.ep.send(me - 1, sample_eta);
            }
            // Party 0 broadcasts the final encrypted predictions.
            (0..n_samples).map(|_| ctx.ep.recv(0)).collect()
        } else {
            // Party 0: [k̄] = z ⊙ [η] per sample, then broadcast.
            let mut outputs: Vec<Ciphertext> =
                pivot_runtime::global().map(threads, &eta, |sample_eta| {
                    vector::dot_plain(&ctx.pk, sample_eta, &z)
                });
            eta.clear();
            verify::tamper_outputs(ctx, "predict", &mut outputs);
            ctx.metrics
                .add_ciphertext_ops((n_samples * n_leaves) as u64);
            for output in &outputs {
                ctx.ep.broadcast(output);
            }
            outputs
        };

        if verification {
            // Verification passes, ring order m−1 → 0: each prover
            // broadcasts the flattened η stage it committed to and every
            // party spot-checks it — popk for the initializer, popcm (over
            // the upstream broadcast) for every masking stage. The direct
            // ring recipient additionally checks the broadcast matches
            // what came down the ring (equivocation guard).
            let mut upstream: Vec<Ciphertext> = Vec::new();
            for prover in (0..m).rev() {
                let flat: Vec<Ciphertext> = if me == prover {
                    ctx.ep.broadcast(&my_flat);
                    my_flat.clone()
                } else {
                    ctx.ep.recv(prover)
                };
                if me + 1 == prover {
                    verify::check_equivocation(ctx, "predict", prover, &received_flat, &flat);
                }
                if prover == m - 1 {
                    let own = (me == prover).then(|| popk_bundle.take()).flatten();
                    verify::check_popk(ctx, "predict", prover, &flat, own);
                } else {
                    let own = (me == prover).then(|| popcm_bundle.take()).flatten();
                    verify::check_popcm(ctx, "predict", prover, &upstream, &flat, own);
                }
                upstream = flat;
            }
            // Party 0's final dot products are deterministic in its
            // broadcast η and the public leaf vector: recompute and
            // compare against what it published.
            let expected: Vec<Ciphertext> = {
                let chunks: Vec<&[Ciphertext]> = upstream.chunks(n_leaves.max(1)).collect();
                pivot_runtime::global().map(threads, &chunks, |sample_eta| {
                    vector::dot_plain(&ctx.pk, sample_eta, &z)
                })
            };
            verify::check_recompute(ctx, "predict", 0, &expected, &outputs);
        }
        outputs
    };
    ctx.metrics.add_time(Stage::Prediction, started.elapsed());
    result
}

/// Encode a plaintext leaf label for the dot product with `[η]`.
fn encode_leaf(ctx: &PartyContext<'_>, value: f64) -> BigUint {
    match ctx.current_task() {
        Task::Classification { .. } => BigUint::from_u64(value as u64),
        Task::Regression => {
            let scaled = value * (1u64 << ctx.params.fixed.frac_bits) as f64;
            encode_signed(ctx, scaled)
        }
    }
}

/// Decode a decrypted prediction.
pub fn decode_prediction(ctx: &PartyContext<'_>, v: &BigUint, task: Task) -> f64 {
    match task {
        Task::Classification { .. } => v.to_u64().expect("class index fits u64") as f64,
        Task::Regression => {
            let signed = if v > ctx.pk.half_n() {
                -((ctx.pk.n() - v).to_u64().expect("bounded") as f64)
            } else {
                v.to_u64().expect("bounded") as f64
            };
            signed / (1u64 << ctx.params.fixed.frac_bits) as f64
        }
    }
}
