//! Algorithm 3 — Pivot decision-tree training, basic protocol (§4).
//!
//! All clients run [`train`] in lockstep; the returned plaintext
//! [`DecisionTree`] (identical at every client) is the released model.
//! Nothing else is disclosed: label masks and statistics stay encrypted,
//! split selection happens on shares, and only the agreed outputs (split
//! identifier + threshold per node, leaf labels) are opened.
//!
//! [`train_with_labels`] additionally supports the GBDT mode of §7.2 where
//! the label vectors are *pre-encrypted residuals*: the winning client then
//! updates `[γ₁]`, `[γ₂]` alongside `[α]` with the same split indicator
//! (the paper's optimization avoiding per-node ciphertext multiplications).

use crate::conversion::ciphers_to_shares;
use crate::gain::{
    best_split, convert_stats, leaf_label_share, prune_decision, reveal_identifier, split_gains,
    NodeShares,
};
use crate::masks::{compute_label_masks, initial_mask, update_vectors_plain, LabelMasks};
use crate::metrics::Stage;
use crate::party::PartyContext;
use crate::stats::{pooled_statistics, LocalSplits, SplitLayout};
use pivot_data::Task;
use pivot_paillier::{vector, Ciphertext};
use pivot_trees::{DecisionTree, Node};

/// Where a node's label vectors `[L]` come from.
pub enum NodeLabels {
    /// §4: the super client recomputes `[γ] = β ⊙ [α]` at every node from
    /// its plaintext labels.
    SuperClient,
    /// §7.2: node-masked encrypted label vectors, updated by the winning
    /// client along with `[α]`.
    Encrypted(Vec<Vec<Ciphertext>>),
}

/// Train a single decision tree on all samples (basic protocol).
pub fn train(ctx: &mut PartyContext<'_>) -> DecisionTree {
    let mask = vec![true; ctx.num_samples()];
    train_with_mask(ctx, &mask)
}

/// Train on a subset of samples (public bootstrap mask — used by the
/// random-forest extension, §7.1).
pub fn train_with_mask(ctx: &mut PartyContext<'_>, included: &[bool]) -> DecisionTree {
    assert_eq!(included.len(), ctx.num_samples());
    let alpha = initial_mask(ctx, included);
    train_with_labels(ctx, alpha, NodeLabels::SuperClient)
}

/// Train with an explicit root mask and label source (GBDT entry point).
pub fn train_with_labels(
    ctx: &mut PartyContext<'_>,
    root_alpha: Vec<Ciphertext>,
    labels: NodeLabels,
) -> DecisionTree {
    let local = LocalSplits::precompute(ctx);
    let layout = SplitLayout::build(ctx.ep, &local.counts());
    let mut nodes = Vec::new();
    let task = ctx.current_task();
    let root = build_node(ctx, &local, &layout, root_alpha, labels, 0, &mut nodes);
    DecisionTree::new(nodes, root, task)
}

fn build_node(
    ctx: &mut PartyContext<'_>,
    local: &LocalSplits,
    layout: &SplitLayout,
    alpha: Vec<Ciphertext>,
    labels: NodeLabels,
    depth: usize,
    nodes: &mut Vec<Node>,
) -> usize {
    let masks = match &labels {
        NodeLabels::SuperClient => compute_label_masks(ctx, &alpha, true),
        // GBDT residual vectors are slack-positive share sums; they carry
        // no +1 offset (see ensemble::gbdt).
        NodeLabels::Encrypted(gammas) => LabelMasks {
            gammas: gammas.clone(),
            offset_encoded: false,
        },
    };

    // Depth pruning is public; the remaining conditions are secure.
    let force_leaf = depth >= ctx.params.tree.max_depth || layout.total() == 0;
    if force_leaf {
        let value = leaf_value_from_totals(ctx, &alpha, &masks);
        nodes.push(Node::Leaf { value });
        return nodes.len() - 1;
    }

    // Local computation + pooling, then MPC conversion (Algorithm 2).
    let enc = pooled_statistics(ctx, layout, local, &alpha, &masks);
    let shares = convert_stats(ctx, layout, &enc);

    let check_purity = ctx.params.tree.stop_when_pure && matches!(labels, NodeLabels::SuperClient);
    if prune_decision(ctx, &shares, check_purity) {
        let value = open_leaf(ctx, &shares);
        nodes.push(Node::Leaf { value });
        return nodes.len() - 1;
    }

    // MPC: gains + secure argmax; the identifier becomes public (§4.1
    // model update step).
    let gains = split_gains(ctx, &shares);
    let (best_idx, _gain) = best_split(ctx, &gains);
    let (winner, local_feature, split_idx) = reveal_identifier(ctx, layout, best_idx);

    // The winner announces the global feature id and plaintext threshold
    // (both part of the released model) and splits the masked vectors.
    let (feature_global, threshold) = ctx.metrics.time(Stage::ModelUpdate, || {
        if ctx.id() == winner {
            let feature_global = ctx.view.feature_indices[local_feature];
            let threshold = local.candidates[local_feature].thresholds[split_idx];
            ctx.ep.broadcast(&(feature_global, threshold));
            (feature_global, threshold)
        } else {
            ctx.ep.recv::<(usize, f64)>(winner)
        }
    });
    let indicator =
        (ctx.id() == winner).then(|| local.indicators[local_feature][split_idx].clone());

    // Mask [α] — and, in GBDT mode, the encrypted label vectors — with the
    // winning indicator.
    let mut vectors = vec![alpha];
    if let NodeLabels::Encrypted(gammas) = &labels {
        vectors.extend(gammas.iter().cloned());
    }
    let started = std::time::Instant::now();
    let (mut lefts, mut rights) = update_vectors_plain(ctx, &vectors, winner, indicator.as_deref());
    ctx.metrics.add_time(Stage::ModelUpdate, started.elapsed());
    let alpha_l = lefts.remove(0);
    let alpha_r = rights.remove(0);
    let (labels_l, labels_r) = match &labels {
        NodeLabels::SuperClient => (NodeLabels::SuperClient, NodeLabels::SuperClient),
        NodeLabels::Encrypted(_) => (NodeLabels::Encrypted(lefts), NodeLabels::Encrypted(rights)),
    };

    let left = build_node(ctx, local, layout, alpha_l, labels_l, depth + 1, nodes);
    let right = build_node(ctx, local, layout, alpha_r, labels_r, depth + 1, nodes);
    nodes.push(Node::Internal {
        feature: feature_global,
        threshold,
        left,
        right,
    });
    nodes.len() - 1
}

/// Leaf label via node totals only (when the depth bound forces a leaf and
/// per-split statistics are unnecessary).
fn leaf_value_from_totals(
    ctx: &mut PartyContext<'_>,
    alpha: &[Ciphertext],
    masks: &LabelMasks,
) -> f64 {
    let all = vec![true; alpha.len()];
    let node_total = vector::dot_binary(&ctx.pk, alpha, &all);
    let mut flat = vec![node_total];
    for gamma in &masks.gammas {
        flat.push(vector::dot_binary(&ctx.pk, gamma, &all));
    }
    ctx.metrics
        .add_ciphertext_ops((alpha.len() * flat.len()) as u64);
    let shares = ciphers_to_shares(ctx, &flat);
    let mut node = NodeShares {
        n_l: Vec::new(),
        g_l: vec![Vec::new(); shares.len() - 1],
        n_total: shares[0],
        g_totals: shares[1..].to_vec(),
    };
    if masks.offset_encoded {
        crate::gain::remove_totals_offset(ctx, &mut node);
    }
    open_leaf(ctx, &node)
}

/// Open the secure leaf label (public in the basic protocol).
fn open_leaf(ctx: &mut PartyContext<'_>, shares: &NodeShares) -> f64 {
    let label = leaf_label_share(ctx, shares);
    let opened = ctx.engine.open(label);
    match ctx.current_task() {
        Task::Classification { .. } => opened.value() as f64,
        Task::Regression => ctx.params.fixed.decode(opened),
    }
}
