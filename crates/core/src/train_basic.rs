//! Algorithm 3 — Pivot decision-tree training, basic protocol (§4).
//!
//! All clients run [`train`] in lockstep; the returned plaintext
//! [`DecisionTree`] (identical at every client) is the released model.
//! Nothing else is disclosed: label masks and statistics stay encrypted,
//! split selection happens on shares, and only the agreed outputs (split
//! identifier + threshold per node, leaf labels) are opened.
//!
//! [`train_with_labels`] additionally supports the GBDT mode of §7.2 where
//! the label vectors are *pre-encrypted residuals*: the winning client then
//! updates `[γ₁]`, `[γ₂]` alongside `[α]` with the same split indicator
//! (the paper's optimization avoiding per-node ciphertext multiplications).

use crate::config::Scheduling;
use crate::conversion::{ciphers_to_shares, packed_ciphers_to_shares};
use crate::gain::{
    best_split, best_split_batch, convert_stats, convert_stats_batch, leaf_label_share,
    leaf_label_shares_batch, node_shares_from_packed, prune_decision, prune_decisions_batch,
    reveal_identifier, split_gains, split_gains_batch, NodeShares,
};
use crate::masks::{
    compute_label_masks, compute_packed_label_masks, initial_mask, plan_packed_labels,
    update_vectors_plain, LabelMasks,
};
use crate::metrics::Stage;
use crate::party::PartyContext;
use crate::stats::{
    packed_pooled_statistics, pooled_statistics, EncryptedStats, LocalSplits, SplitLayout,
};
use pivot_data::Task;
use pivot_paillier::{vector, Ciphertext, SlotCodec};
use pivot_trees::{DecisionTree, Node};

/// Where a node's label vectors `[L]` come from.
pub enum NodeLabels {
    /// §4: the super client recomputes `[γ] = β ⊙ [α]` at every node from
    /// its plaintext labels.
    SuperClient,
    /// §7.2: node-masked encrypted label vectors, updated by the winning
    /// client along with `[α]`.
    Encrypted(Vec<Vec<Ciphertext>>),
}

/// Train a single decision tree on all samples (basic protocol).
pub fn train(ctx: &mut PartyContext<'_>) -> DecisionTree {
    let mask = vec![true; ctx.num_samples()];
    train_with_mask(ctx, &mask)
}

/// Train on a subset of samples (public bootstrap mask — used by the
/// random-forest extension, §7.1).
pub fn train_with_mask(ctx: &mut PartyContext<'_>, included: &[bool]) -> DecisionTree {
    assert_eq!(included.len(), ctx.num_samples());
    let alpha = initial_mask(ctx, included);
    train_with_labels(ctx, alpha, NodeLabels::SuperClient)
}

/// Train with an explicit root mask and label source (GBDT entry point).
pub fn train_with_labels(
    ctx: &mut PartyContext<'_>,
    root_alpha: Vec<Ciphertext>,
    labels: NodeLabels,
) -> DecisionTree {
    let (local, layout) = {
        let _setup = pivot_trace::phase_span("setup");
        let local = LocalSplits::precompute(ctx);
        let layout = SplitLayout::build(ctx.ep, &local.counts());
        (local, layout)
    };
    let task = ctx.current_task();
    // Packed mode needs the super client's plaintext labels to build the
    // packed label vectors, and GBDT residual vectors carry unbounded
    // mod-p slack that no slot-width audit can cover — so packing applies
    // to the SuperClient label source only and GBDT keeps the scalar path.
    let codec = match &labels {
        NodeLabels::SuperClient => ctx.packing_codec(),
        NodeLabels::Encrypted(_) => None,
    };
    if ctx.params.scheduling == Scheduling::Pipelined {
        return train_level_wise_pipelined(
            ctx,
            &local,
            &layout,
            root_alpha,
            labels,
            codec.as_ref(),
        );
    }
    if let Some(codec) = codec {
        return train_level_wise(ctx, &local, &layout, root_alpha, &codec);
    }
    let mut nodes = Vec::new();
    let root = build_node(ctx, &local, &layout, root_alpha, labels, 0, &mut nodes);
    DecisionTree::new(nodes, root, task)
}

/// Packed training is **level-wise**: the whole tree frontier at one
/// depth runs its local computation first, then a *single* Algorithm-2
/// conversion covers every sibling's packed statistics — the `-PP`
/// batches grow from `O(b·d)` per call to `O(2^h·b·d)` (the ROADMAP's
/// pool-aware scheduling lever). Split selection and model updates stay
/// per node. The trained tree is identical to the recursive path's
/// (statistics are exact, so every argmax and pruning decision matches);
/// only the transcript — ciphertext count, bytes, batch widths — differs.
fn train_level_wise(
    ctx: &mut PartyContext<'_>,
    local: &LocalSplits,
    layout: &SplitLayout,
    root_alpha: Vec<Ciphertext>,
    codec: &SlotCodec,
) -> DecisionTree {
    let task = ctx.current_task();
    // The packed label multipliers depend only on labels/task/codec —
    // built once here, reused by every node at every level.
    let label_plan = plan_packed_labels(ctx, codec);
    let mut nodes: Vec<Option<Node>> = vec![None];
    let mut frontier: Vec<(usize, Vec<Ciphertext>)> = vec![(0, root_alpha)];
    let mut depth = 0;
    while !frontier.is_empty() {
        // Depth-forced leaf levels need only the node totals — a handful
        // of values per node, where packing has nothing to amortize. They
        // take the scalar totals path the recursive builder uses.
        if depth >= ctx.params.tree.max_depth || layout.total() == 0 {
            for (slot, alpha) in frontier.drain(..) {
                let _leaf = pivot_trace::phase_span("leaf");
                let stats_start = ctx.ep.stats().bytes_sent();
                let masks = compute_label_masks(ctx, &alpha, true);
                let value = leaf_value_from_totals(ctx, &alpha, &masks, stats_start);
                nodes[slot] = Some(Node::Leaf { value });
            }
            break;
        }
        let _level = pivot_trace::span_fn(|| format!("level {depth}"));
        let stats_start = ctx.ep.stats().bytes_sent();

        let per_node: Vec<crate::stats::PackedStats> = {
            let _stats = pivot_trace::phase_span("stats");
            // Per-node packed label vectors (the super client broadcasts).
            let labels: Vec<_> = frontier
                .iter()
                .map(|(_, alpha)| compute_packed_label_masks(ctx, alpha, &label_plan))
                .collect();

            // Per-node packed statistics.
            labels
                .iter()
                .map(|packed_labels| {
                    packed_pooled_statistics(ctx, layout, local, packed_labels, codec)
                })
                .collect()
        };

        // ONE conversion for the whole frontier.
        let (slot_shares, spans) = {
            let _conv = pivot_trace::phase_span("conversion");
            let (cts, used, spans) = crate::stats::conversion_batch(&per_node);
            let started = std::time::Instant::now();
            let slot_shares = packed_ciphers_to_shares(ctx, codec, &cts, &used);
            ctx.metrics
                .add_time(Stage::MpcComputation, started.elapsed());
            (slot_shares, spans)
        };
        ctx.metrics
            .add_stats_bytes(ctx.ep.stats().bytes_sent() - stats_start);

        let mut next = Vec::new();
        for (i, ((slot, alpha), ps)) in frontier.drain(..).zip(&per_node).enumerate() {
            let _node = pivot_trace::span_fn(|| format!("node d{depth} #{i}"));
            let span = &slot_shares[spans[i]..spans[i] + ps.conversion_len()];
            let (pruned, shares) = {
                let _gain = pivot_trace::phase_span("gain");
                let shares = node_shares_from_packed(ctx, layout, ps, span);
                let check_purity = ctx.params.tree.stop_when_pure;
                (prune_decision(ctx, &shares, check_purity), shares)
            };
            if pruned {
                let _leaf = pivot_trace::phase_span("leaf");
                nodes[slot] = Some(Node::Leaf {
                    value: open_leaf(ctx, &shares),
                });
                continue;
            }

            let best_idx = {
                let _gain = pivot_trace::phase_span("gain");
                let gains = split_gains(ctx, &shares);
                let (best_idx, _gain_share) = best_split(ctx, &gains);
                best_idx
            };
            let (winner, local_feature, split_idx, feature_global, threshold) = {
                let _reveal = pivot_trace::phase_span("split_reveal");
                let (winner, local_feature, split_idx) = reveal_identifier(ctx, layout, best_idx);
                let (feature_global, threshold) = ctx.metrics.time(Stage::ModelUpdate, || {
                    if ctx.id() == winner {
                        let feature_global = ctx.view.feature_indices[local_feature];
                        let threshold = local.candidates[local_feature].thresholds[split_idx];
                        ctx.ep.broadcast(&(feature_global, threshold));
                        (feature_global, threshold)
                    } else {
                        ctx.ep.recv::<(usize, f64)>(winner)
                    }
                });
                (winner, local_feature, split_idx, feature_global, threshold)
            };
            let indicator =
                (ctx.id() == winner).then(|| local.indicators[local_feature][split_idx].clone());
            let vectors = vec![alpha];
            let started = std::time::Instant::now();
            let (mut lefts, mut rights) = {
                let _update = pivot_trace::phase_span("update");
                update_vectors_plain(ctx, &vectors, winner, indicator.as_deref())
            };
            ctx.metrics.add_time(Stage::ModelUpdate, started.elapsed());

            let left_slot = nodes.len();
            nodes.push(None);
            let right_slot = nodes.len();
            nodes.push(None);
            nodes[slot] = Some(Node::Internal {
                feature: feature_global,
                threshold,
                left: left_slot,
                right: right_slot,
            });
            next.push((left_slot, lefts.remove(0)));
            next.push((right_slot, rights.remove(0)));
        }
        frontier = next;
        depth += 1;
    }
    let nodes: Vec<Node> = nodes
        .into_iter()
        .map(|n| n.expect("every allocated node is resolved"))
        .collect();
    // Renumber the breadth-first arena into the recursive builder's
    // post-order so the released model is *identical* to the unpacked
    // path's, arena layout included.
    let (nodes, root) = renumber_postorder(&nodes, 0);
    DecisionTree::new(nodes, root, task)
}

/// Rewrite a node arena into post-order (left subtree, right subtree,
/// node) — the layout the recursive builder produces.
fn renumber_postorder(nodes: &[Node], root: usize) -> (Vec<Node>, usize) {
    fn visit(nodes: &[Node], id: usize, out: &mut Vec<Node>) -> usize {
        match &nodes[id] {
            Node::Leaf { value } => out.push(Node::Leaf { value: *value }),
            Node::Internal {
                feature,
                threshold,
                left,
                right,
            } => {
                let l = visit(nodes, *left, out);
                let r = visit(nodes, *right, out);
                out.push(Node::Internal {
                    feature: *feature,
                    threshold: *threshold,
                    left: l,
                    right: r,
                });
            }
        }
        out.len() - 1
    }
    let mut out = Vec::with_capacity(nodes.len());
    let root = visit(nodes, root, &mut out);
    (out, root)
}

/// Pipelined scheduling (§ROADMAP "round compaction"): the whole tree
/// frontier advances level-by-level through **batched** protocol stages —
/// one statistics conversion, one prune-comparison unit, one gain
/// pipeline, one lockstep argmax ladder, and one deferred-open settlement
/// round per level, instead of per node. Works with packed or scalar
/// statistics and with either label source (the GBDT residual path
/// included). Statistics, comparisons, and Beaver products are exact, so
/// the released tree matches the sequential schedule's; only the
/// transcript (round structure, batch widths) differs.
fn train_level_wise_pipelined(
    ctx: &mut PartyContext<'_>,
    local: &LocalSplits,
    layout: &SplitLayout,
    root_alpha: Vec<Ciphertext>,
    labels: NodeLabels,
    codec: Option<&SlotCodec>,
) -> DecisionTree {
    let task = ctx.current_task();
    let super_client = matches!(labels, NodeLabels::SuperClient);
    let label_plan = codec.map(|c| plan_packed_labels(ctx, c));
    let root_gammas = match labels {
        NodeLabels::SuperClient => None,
        NodeLabels::Encrypted(gammas) => Some(gammas),
    };
    let mut nodes: Vec<Option<Node>> = vec![None];
    // (arena slot, [α], encrypted label vectors when not the super client)
    type Frontier = (usize, Vec<Ciphertext>, Option<Vec<Vec<Ciphertext>>>);
    let mut frontier: Vec<Frontier> = vec![(0, root_alpha, root_gammas)];
    let mut depth = 0;
    while !frontier.is_empty() {
        if depth >= ctx.params.tree.max_depth || layout.total() == 0 {
            forced_leaves_batch(ctx, &mut nodes, std::mem::take(&mut frontier));
            break;
        }
        let _level = pivot_trace::span_fn(|| format!("level {depth}"));
        let stats_start = ctx.ep.stats().bytes_sent();

        // Statistics and ONE Algorithm-2 conversion for the level.
        let node_shares: Vec<NodeShares> = if let (Some(codec), Some(plan)) = (codec, &label_plan) {
            let per_node: Vec<crate::stats::PackedStats> = {
                let _stats = pivot_trace::phase_span("stats");
                let labels: Vec<_> = frontier
                    .iter()
                    .map(|(_, alpha, _)| compute_packed_label_masks(ctx, alpha, plan))
                    .collect();
                labels
                    .iter()
                    .map(|packed| packed_pooled_statistics(ctx, layout, local, packed, codec))
                    .collect()
            };
            let _conv = pivot_trace::phase_span("conversion");
            let (cts, used, spans) = crate::stats::conversion_batch(&per_node);
            let started = std::time::Instant::now();
            let slot_shares = packed_ciphers_to_shares(ctx, codec, &cts, &used);
            ctx.metrics
                .add_time(Stage::MpcComputation, started.elapsed());
            per_node
                .iter()
                .enumerate()
                .map(|(i, ps)| {
                    let span = &slot_shares[spans[i]..spans[i] + ps.conversion_len()];
                    node_shares_from_packed(ctx, layout, ps, span)
                })
                .collect()
        } else {
            let encs: Vec<EncryptedStats> = {
                let _stats = pivot_trace::phase_span("stats");
                frontier
                    .iter()
                    .map(|(_, alpha, gammas)| {
                        let masks = match gammas {
                            None => compute_label_masks(ctx, alpha, true),
                            Some(g) => LabelMasks {
                                gammas: g.clone(),
                                offset_encoded: false,
                            },
                        };
                        pooled_statistics(ctx, layout, local, alpha, &masks)
                    })
                    .collect()
            };
            let _conv = pivot_trace::phase_span("conversion");
            let refs: Vec<&EncryptedStats> = encs.iter().collect();
            convert_stats_batch(ctx, layout, &refs)
        };
        ctx.metrics
            .add_stats_bytes(ctx.ep.stats().bytes_sent() - stats_start);

        // One prune unit for the frontier.
        let pruned = {
            let _gain = pivot_trace::phase_span("gain");
            let refs: Vec<&NodeShares> = node_shares.iter().collect();
            let check_purity = ctx.params.tree.stop_when_pure && super_client;
            prune_decisions_batch(ctx, &refs, check_purity)
        };

        // Pruned nodes: leaf labels in one batch, opened later via the
        // deferred queue (settles together with the winner indices).
        let leaf_tickets: Vec<(usize, usize)> = {
            let _leaf = pivot_trace::phase_span("leaf");
            let idxs: Vec<usize> = (0..frontier.len()).filter(|&i| pruned[i]).collect();
            let sel: Vec<&NodeShares> = idxs.iter().map(|&i| &node_shares[i]).collect();
            let shares = leaf_label_shares_batch(ctx, &sel);
            idxs.into_iter()
                .zip(shares)
                .map(|(i, s)| (i, ctx.engine.open_deferred(&[s])))
                .collect()
        };

        // Survivors: gains, lockstep argmax, winner indices deferred.
        let live: Vec<usize> = (0..frontier.len()).filter(|&i| !pruned[i]).collect();
        let idx_tickets: Vec<usize> = {
            let _gain = pivot_trace::phase_span("gain");
            let sel: Vec<&NodeShares> = live.iter().map(|&i| &node_shares[i]).collect();
            let gains = split_gains_batch(ctx, &sel);
            best_split_batch(ctx, &gains)
                .into_iter()
                .map(|(idx, _)| ctx.engine.open_deferred(&[idx]))
                .collect()
        };

        // ONE opening round settles every leaf label and winner index.
        let resolved = {
            let _reveal = pivot_trace::phase_span("split_reveal");
            let started = std::time::Instant::now();
            let resolved = ctx.engine.resolve();
            ctx.metrics
                .add_time(Stage::MpcComputation, started.elapsed());
            resolved
        };

        let mut items: Vec<Option<Frontier>> = frontier.drain(..).map(Some).collect();
        for &(i, ticket) in &leaf_tickets {
            let (slot, _, _) = items[i].take().expect("pruned node unconsumed");
            let opened = resolved[ticket][0];
            let value = match task {
                Task::Classification { .. } => opened.value() as f64,
                Task::Regression => ctx.params.fixed.decode(opened),
            };
            nodes[slot] = Some(Node::Leaf { value });
        }

        // Winner announcements and mask updates; the per-node frames of
        // this stage coalesce at the transport layer.
        let mut next: Vec<Frontier> = Vec::new();
        for (t, &i) in live.iter().enumerate() {
            let (slot, alpha, gammas) = items[i].take().expect("live node unconsumed");
            let (winner, local_feature, split_idx, feature_global, threshold) = {
                let _reveal = pivot_trace::phase_span("split_reveal");
                let opened = resolved[idx_tickets[t]][0].value() as usize;
                let (winner, local_feature, split_idx) = layout.locate(opened);
                let (feature_global, threshold) = ctx.metrics.time(Stage::ModelUpdate, || {
                    if ctx.id() == winner {
                        let feature_global = ctx.view.feature_indices[local_feature];
                        let threshold = local.candidates[local_feature].thresholds[split_idx];
                        ctx.ep.broadcast(&(feature_global, threshold));
                        (feature_global, threshold)
                    } else {
                        ctx.ep.recv::<(usize, f64)>(winner)
                    }
                });
                (winner, local_feature, split_idx, feature_global, threshold)
            };
            let indicator =
                (ctx.id() == winner).then(|| local.indicators[local_feature][split_idx].clone());
            let mut vectors = vec![alpha];
            let has_gammas = gammas.is_some();
            if let Some(gammas) = gammas {
                vectors.extend(gammas);
            }
            let started = std::time::Instant::now();
            let (mut lefts, mut rights) = {
                let _update = pivot_trace::phase_span("update");
                update_vectors_plain(ctx, &vectors, winner, indicator.as_deref())
            };
            ctx.metrics.add_time(Stage::ModelUpdate, started.elapsed());

            let alpha_l = lefts.remove(0);
            let alpha_r = rights.remove(0);
            let (gammas_l, gammas_r) = if has_gammas {
                (Some(lefts), Some(rights))
            } else {
                (None, None)
            };
            let left_slot = nodes.len();
            nodes.push(None);
            let right_slot = nodes.len();
            nodes.push(None);
            nodes[slot] = Some(Node::Internal {
                feature: feature_global,
                threshold,
                left: left_slot,
                right: right_slot,
            });
            next.push((left_slot, alpha_l, gammas_l));
            next.push((right_slot, alpha_r, gammas_r));
        }
        frontier = next;
        depth += 1;
        // Latency-hiding refill window: the dealer pool and decryption
        // nonce pool top up between levels while no protocol round is in
        // flight, so the next level's comparisons hit warm pools. The
        // dealer top-up is blocking and burst-sized — the next level
        // drains its whole preprocessing demand at once.
        if !frontier.is_empty() {
            ctx.engine
                .dealer_refill_blocking(frontier.len(), live.len().max(1));
            ctx.nonces.refill();
        }
        // Level barrier: every party reaches this point with identical
        // depth/frontier state, so the checkpoint sink (when installed)
        // snapshots the same ordinal everywhere.
        ctx.level_barrier(depth as u64);
    }
    let nodes: Vec<Node> = nodes
        .into_iter()
        .map(|n| n.expect("every allocated node is resolved"))
        .collect();
    let (nodes, root) = renumber_postorder(&nodes, 0);
    DecisionTree::new(nodes, root, task)
}

/// Depth-forced leaf level: every node's totals convert in one
/// Algorithm-2 batch and every leaf label opens in one round.
fn forced_leaves_batch(
    ctx: &mut PartyContext<'_>,
    nodes: &mut [Option<Node>],
    frontier: Vec<(usize, Vec<Ciphertext>, Option<Vec<Vec<Ciphertext>>>)>,
) {
    let _leaf = pivot_trace::phase_span("leaf");
    let task = ctx.current_task();
    let stats_start = ctx.ep.stats().bytes_sent();
    let mut flats: Vec<Vec<Ciphertext>> = Vec::with_capacity(frontier.len());
    let mut offsets: Vec<bool> = Vec::with_capacity(frontier.len());
    for (_, alpha, gammas) in &frontier {
        let masks = match gammas {
            None => compute_label_masks(ctx, alpha, true),
            Some(g) => LabelMasks {
                gammas: g.clone(),
                offset_encoded: false,
            },
        };
        let all = vec![true; alpha.len()];
        let mut flat = vec![vector::dot_binary(&ctx.pk, alpha, &all)];
        for gamma in &masks.gammas {
            flat.push(vector::dot_binary(&ctx.pk, gamma, &all));
        }
        ctx.metrics
            .add_ciphertext_ops((alpha.len() * flat.len()) as u64);
        flats.push(flat);
        offsets.push(masks.offset_encoded);
    }
    let all_flat: Vec<Ciphertext> = flats.iter().flatten().cloned().collect();
    let shares = ciphers_to_shares(ctx, &all_flat);
    ctx.metrics
        .add_stats_bytes(ctx.ep.stats().bytes_sent() - stats_start);

    let mut totals: Vec<NodeShares> = Vec::with_capacity(frontier.len());
    let mut at = 0;
    for (flat, &offset_encoded) in flats.iter().zip(&offsets) {
        let chunk = &shares[at..at + flat.len()];
        at += flat.len();
        let mut node = NodeShares {
            n_l: Vec::new(),
            g_l: vec![Vec::new(); flat.len() - 1],
            n_total: chunk[0],
            g_totals: chunk[1..].to_vec(),
        };
        if offset_encoded {
            crate::gain::remove_totals_offset(ctx, &mut node);
        }
        totals.push(node);
    }
    let refs: Vec<&NodeShares> = totals.iter().collect();
    let labels = leaf_label_shares_batch(ctx, &refs);
    let opened = ctx.engine.open_vec(&labels);
    for ((slot, _, _), value) in frontier.iter().zip(&opened) {
        let value = match task {
            Task::Classification { .. } => value.value() as f64,
            Task::Regression => ctx.params.fixed.decode(*value),
        };
        nodes[*slot] = Some(Node::Leaf { value });
    }
}

fn build_node(
    ctx: &mut PartyContext<'_>,
    local: &LocalSplits,
    layout: &SplitLayout,
    alpha: Vec<Ciphertext>,
    labels: NodeLabels,
    depth: usize,
    nodes: &mut Vec<Node>,
) -> usize {
    let _node = pivot_trace::span_fn(|| format!("node d{depth}"));
    let stats_start = ctx.ep.stats().bytes_sent();
    let masks = {
        let _stats = pivot_trace::phase_span("stats");
        match &labels {
            NodeLabels::SuperClient => compute_label_masks(ctx, &alpha, true),
            // GBDT residual vectors are slack-positive share sums; they carry
            // no +1 offset (see ensemble::gbdt).
            NodeLabels::Encrypted(gammas) => LabelMasks {
                gammas: gammas.clone(),
                offset_encoded: false,
            },
        }
    };

    // Depth pruning is public; the remaining conditions are secure.
    let force_leaf = depth >= ctx.params.tree.max_depth || layout.total() == 0;
    if force_leaf {
        let _leaf = pivot_trace::phase_span("leaf");
        let value = leaf_value_from_totals(ctx, &alpha, &masks, stats_start);
        nodes.push(Node::Leaf { value });
        return nodes.len() - 1;
    }

    // Local computation + pooling, then MPC conversion (Algorithm 2).
    let enc = {
        let _stats = pivot_trace::phase_span("stats");
        pooled_statistics(ctx, layout, local, &alpha, &masks)
    };
    let shares = {
        let _conv = pivot_trace::phase_span("conversion");
        convert_stats(ctx, layout, &enc)
    };
    ctx.metrics
        .add_stats_bytes(ctx.ep.stats().bytes_sent() - stats_start);

    let check_purity = ctx.params.tree.stop_when_pure && matches!(labels, NodeLabels::SuperClient);
    let pruned = {
        let _gain = pivot_trace::phase_span("gain");
        prune_decision(ctx, &shares, check_purity)
    };
    if pruned {
        let _leaf = pivot_trace::phase_span("leaf");
        let value = open_leaf(ctx, &shares);
        nodes.push(Node::Leaf { value });
        return nodes.len() - 1;
    }

    // MPC: gains + secure argmax; the identifier becomes public (§4.1
    // model update step).
    let best_idx = {
        let _gain = pivot_trace::phase_span("gain");
        let gains = split_gains(ctx, &shares);
        let (best_idx, _gain_share) = best_split(ctx, &gains);
        best_idx
    };

    // The winner announces the global feature id and plaintext threshold
    // (both part of the released model) and splits the masked vectors.
    let (winner, local_feature, split_idx, feature_global, threshold) = {
        let _reveal = pivot_trace::phase_span("split_reveal");
        let (winner, local_feature, split_idx) = reveal_identifier(ctx, layout, best_idx);
        let (feature_global, threshold) = ctx.metrics.time(Stage::ModelUpdate, || {
            if ctx.id() == winner {
                let feature_global = ctx.view.feature_indices[local_feature];
                let threshold = local.candidates[local_feature].thresholds[split_idx];
                ctx.ep.broadcast(&(feature_global, threshold));
                (feature_global, threshold)
            } else {
                ctx.ep.recv::<(usize, f64)>(winner)
            }
        });
        (winner, local_feature, split_idx, feature_global, threshold)
    };
    let indicator =
        (ctx.id() == winner).then(|| local.indicators[local_feature][split_idx].clone());

    // Mask [α] — and, in GBDT mode, the encrypted label vectors — with the
    // winning indicator.
    let mut vectors = vec![alpha];
    if let NodeLabels::Encrypted(gammas) = &labels {
        vectors.extend(gammas.iter().cloned());
    }
    let started = std::time::Instant::now();
    let (mut lefts, mut rights) = {
        let _update = pivot_trace::phase_span("update");
        update_vectors_plain(ctx, &vectors, winner, indicator.as_deref())
    };
    ctx.metrics.add_time(Stage::ModelUpdate, started.elapsed());
    let alpha_l = lefts.remove(0);
    let alpha_r = rights.remove(0);
    let (labels_l, labels_r) = match &labels {
        NodeLabels::SuperClient => (NodeLabels::SuperClient, NodeLabels::SuperClient),
        NodeLabels::Encrypted(_) => (NodeLabels::Encrypted(lefts), NodeLabels::Encrypted(rights)),
    };

    let left = build_node(ctx, local, layout, alpha_l, labels_l, depth + 1, nodes);
    let right = build_node(ctx, local, layout, alpha_r, labels_r, depth + 1, nodes);
    nodes.push(Node::Internal {
        feature: feature_global,
        threshold,
        left,
        right,
    });
    nodes.len() - 1
}

/// Leaf label via node totals only (when the depth bound forces a leaf and
/// per-split statistics are unnecessary).
fn leaf_value_from_totals(
    ctx: &mut PartyContext<'_>,
    alpha: &[Ciphertext],
    masks: &LabelMasks,
    stats_start: u64,
) -> f64 {
    let all = vec![true; alpha.len()];
    let node_total = vector::dot_binary(&ctx.pk, alpha, &all);
    let mut flat = vec![node_total];
    for gamma in &masks.gammas {
        flat.push(vector::dot_binary(&ctx.pk, gamma, &all));
    }
    ctx.metrics
        .add_ciphertext_ops((alpha.len() * flat.len()) as u64);
    let shares = ciphers_to_shares(ctx, &flat);
    ctx.metrics
        .add_stats_bytes(ctx.ep.stats().bytes_sent() - stats_start);
    let mut node = NodeShares {
        n_l: Vec::new(),
        g_l: vec![Vec::new(); shares.len() - 1],
        n_total: shares[0],
        g_totals: shares[1..].to_vec(),
    };
    if masks.offset_encoded {
        crate::gain::remove_totals_offset(ctx, &mut node);
    }
    open_leaf(ctx, &node)
}

/// Open the secure leaf label (public in the basic protocol).
fn open_leaf(ctx: &mut PartyContext<'_>, shares: &NodeShares) -> f64 {
    let label = leaf_label_share(ctx, shares);
    let opened = ctx.engine.open(label);
    match ctx.current_task() {
        Task::Classification { .. } => opened.value() as f64,
        Task::Regression => ctx.params.fixed.decode(opened),
    }
}
