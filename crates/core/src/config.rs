//! Protocol configuration (paper Table 4 parameters plus implementation
//! knobs).

use pivot_mpc::{CompareBits, FixedConfig, MODULUS};
use pivot_paillier::SlotCodec;
use pivot_trace::TraceLevel;
use pivot_trees::TreeParams;

/// Which Pivot protocol variant to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// §4: the trained tree is released in plaintext.
    Basic,
    /// §5: split thresholds and leaf labels stay concealed.
    Enhanced,
}

/// Ciphertext packing for the split-statistics pipeline (SecureBoost+
/// style, see `pivot_paillier::packing`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Packing {
    /// No packing: every statistic is its own ciphertext — bit-identical
    /// to the pre-packing (PR-3) transcript.
    Off,
    /// Pack with as many slots as the keysize admits under the slot-width
    /// audit ([`PivotParams::slot_plan`]).
    Auto,
    /// Pack with exactly this many slots (must not exceed the audited
    /// maximum; rejected by [`PivotParams::assert_valid`] otherwise).
    Slots(usize),
}

/// Protocol scheduling policy: how the trainers order independent
/// protocol stages and how the transport frames their messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheduling {
    /// One node at a time, one opening per call, per-message frames —
    /// bit-identical transcript to the pre-scheduler (PR-6) code.
    Sequential,
    /// Round-compacted: frame coalescing on the transport, level-wide
    /// batched comparisons/openings in the trainers (deferred opens,
    /// lockstep argmax ladders), and dealer/nonce refill kicks in the
    /// wait-free windows between tree levels. Released models,
    /// predictions, and metrics are identical to `Sequential`; only the
    /// communication schedule (rounds, frames, wait time) changes.
    Pipelined,
}

/// Malicious-model verification policy (§9.1): whether parties attach and
/// check Σ-protocol proofs on their ciphertext commitments.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Verification {
    /// No proofs generated or checked — bit-identical transcript to the
    /// honest-but-curious protocol (the same contract as `trace`).
    Off,
    /// Proofs are attached to every commit; a seeded-deterministic
    /// `p`-fraction per phase is verified, so honest runs pay ~`p` of the
    /// full verification cost and any tampered commit is caught with
    /// probability ≥ `p`. `Spot(1.0)` is equivalent to [`Self::Full`].
    Spot(f64),
    /// Every proof is verified by every party.
    Full,
}

impl Verification {
    /// Whether any proofs are generated at all.
    pub fn is_on(&self) -> bool {
        !matches!(self, Verification::Off)
    }

    /// The fraction of proofs each party verifies.
    pub fn probability(&self) -> f64 {
        match self {
            Verification::Off => 0.0,
            Verification::Spot(p) => *p,
            Verification::Full => 1.0,
        }
    }
}

/// A deterministic malicious-party injection (the `[adversary]` scenario
/// section, mirroring the `[faults]` plan): `party` tampers the
/// ciphertext at `index` of its `phase` commit — *after* generating its
/// proof over the honest value, so the published proof no longer matches
/// the published ciphertext and verification must catch and attribute it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdversarySpec {
    /// The tampering party.
    pub party: usize,
    /// Which verification phase to tamper (`setup`, `label_masks`,
    /// `stats`, `update`, `predict`).
    pub phase: String,
    /// Which committed ciphertext of that phase to tamper: a 0-based
    /// index into the party's *cumulative* commit stream for the phase
    /// (phases that commit repeatedly — per class, per tree level —
    /// keep counting, so every commit of a run is addressable exactly
    /// once).
    pub index: usize,
}

impl AdversarySpec {
    /// Parse the scenario grammar: `party <id> phase=<name> index=<k>`.
    pub fn parse(spec: &str) -> Result<AdversarySpec, String> {
        let mut phase = None;
        let mut index = 0usize;
        let mut words = spec.split_whitespace().peekable();
        let party = match (words.next(), words.peek()) {
            (Some("party"), Some(_)) => {
                let id = words.next().expect("peeked");
                id.parse::<usize>()
                    .map_err(|_| format!("adversary: bad party id {id:?}"))?
            }
            _ => return Err(format!("adversary: expected `party <id> …`, got {spec:?}")),
        };
        for word in words {
            match word.split_once('=') {
                Some(("phase", v)) => phase = Some(v.to_string()),
                Some(("index", v)) => {
                    index = v
                        .parse()
                        .map_err(|_| format!("adversary: bad index {v:?}"))?;
                }
                _ => return Err(format!("adversary: unknown clause {word:?}")),
            }
        }
        let phase = phase.ok_or_else(|| format!("adversary: missing phase= in {spec:?}"))?;
        const PHASES: [&str; 5] = ["setup", "label_masks", "stats", "update", "predict"];
        if !PHASES.contains(&phase.as_str()) {
            return Err(format!(
                "adversary: unknown phase {phase:?} (expected one of {PHASES:?})"
            ));
        }
        Ok(AdversarySpec {
            party,
            phase,
            index,
        })
    }
}

/// The audited slot layout for one run: how wide a slot must be and how
/// many fit a ciphertext.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotPlan {
    /// Slot width in bits (no slot-sum may ever reach `2^slot_bits`).
    pub slot_bits: u32,
    /// Slots per ciphertext.
    pub slots: usize,
}

impl SlotPlan {
    /// Materialize the codec for this plan. The signedness offset is the
    /// Algorithm-2 offset `2^(int_bits−1)` — exactly the constant the
    /// scalar conversion adds before joint decryption.
    pub fn codec(&self, fixed: &FixedConfig) -> SlotCodec {
        SlotCodec::with_offset(self.slot_bits, self.slots, fixed.int_bits - 1)
    }
}

/// Full parameter set for a Pivot training/prediction session.
#[derive(Clone, Debug)]
pub struct PivotParams {
    /// Tree-growing parameters (`h`, pruning threshold, `b`).
    pub tree: TreeParams,
    /// Protocol variant.
    pub protocol: Protocol,
    /// Paillier modulus bits (the paper's "keysize": 1024 default,
    /// 512 for accuracy runs; tests use 128–256).
    pub keysize: u32,
    /// MPC fixed-point layout.
    pub fixed: FixedConfig,
    /// Parallelize the homomorphic bulk operations (the paper's `-PP`
    /// variants — §8.3 parallelizes threshold decryption with 6 cores;
    /// this reproduction batches *every* bulk crypto operation through the
    /// shared worker pool and enables the offline randomness pool).
    /// Off or on, the trained model and per-party traffic are
    /// bit-identical: batches are order-preserving and encryption nonces
    /// come from the same seeded stream in the same order.
    pub parallel_decrypt: bool,
    /// Worker threads for batched crypto operations (paper: 6).
    /// Generalizes the former `decrypt_threads`, which only fed partial
    /// decryption.
    pub crypto_threads: usize,
    /// Offline randomness-pool size: how many `r^N mod N²` nonce powers
    /// background workers keep precomputed (0 disables precomputation).
    /// Only active under `parallel_decrypt`; has no effect on outputs.
    pub randomness_pool: usize,
    /// Ciphertext packing for split statistics. `Off` keeps the exact
    /// pre-packing transcript; `Auto`/`Slots(_)` train the *same tree*
    /// (argmax parity) over packed statistics and level-wise batched
    /// conversions.
    pub packing: Packing,
    /// Secure-comparison width policy. `Full` pins every comparison to
    /// `fixed.int_bits` on the legacy linear BitLT — bit-for-bit the
    /// PR-3/PR-4 transcript. `Auto` lets every call site pay only for its
    /// proven value range on the log-depth BitLT ladder (same released
    /// models: comparisons stay exact, so every argmax is unchanged).
    /// `Floor(n)` is `Auto` with a minimum width — a conservative dial.
    pub comparison_bits: CompareBits,
    /// Offline dealer-pool size: how many Beaver triples / masked-bit
    /// rows per stream background workers keep precomputed (0 disables
    /// precomputation). Only active under `parallel_decrypt` and a
    /// bounded `comparison_bits` policy; has no effect on outputs.
    pub dealer_pool: usize,
    /// Common seed for the simulated MPC offline phase.
    pub dealer_seed: u64,
    /// Protocol scheduling policy. `Sequential` (default) keeps the
    /// exact PR-6 communication schedule; `Pipelined` compacts rounds
    /// (same released models/predictions/metrics, fewer round-trips).
    pub scheduling: Scheduling,
    /// Malicious-model verification policy. `Off` (default) generates
    /// and checks nothing — bit-identical transcript. `Spot(p)`/`Full`
    /// attach Σ-protocol proofs to every ciphertext commit and verify a
    /// deterministic fraction; a rejected proof raises
    /// `ProtocolError::ProofRejected` naming the prover. Requires
    /// `packing = Off` (the packed statistics pipeline carries no
    /// proofs).
    pub verification: Verification,
    /// Deterministic malicious-party injection for CI/testing; only
    /// meaningful with `verification` on.
    pub adversary: Option<AdversarySpec>,
    /// Protocol tracing level. `Off` (default) installs no collector —
    /// the transcript is bit-identical to an untraced run and every hook
    /// is a single atomic load. `Phases`/`Full` record span timelines
    /// and per-phase round/byte attribution; telemetry never perturbs
    /// the protocol (models, metrics, and traffic are unchanged).
    pub trace: TraceLevel,
}

impl Default for PivotParams {
    fn default() -> Self {
        PivotParams {
            tree: TreeParams::default(),
            protocol: Protocol::Basic,
            keysize: 256,
            fixed: FixedConfig::default(),
            parallel_decrypt: false,
            crypto_threads: 6,
            randomness_pool: 256,
            packing: Packing::Off,
            comparison_bits: CompareBits::Full,
            dealer_pool: 256,
            dealer_seed: 0x9162_07,
            scheduling: Scheduling::Sequential,
            verification: Verification::Off,
            adversary: None,
            trace: TraceLevel::Off,
        }
    }
}

impl PivotParams {
    /// Parameters for the enhanced protocol. Purity-based early stopping is
    /// disabled: checking purity would reveal one bit about concealed leaf
    /// labels (see `TreeParams::stop_when_pure`).
    pub fn enhanced() -> Self {
        let mut p = PivotParams {
            protocol: Protocol::Enhanced,
            ..Default::default()
        };
        p.tree.stop_when_pure = false;
        p
    }

    /// Worker threads the batched crypto operations may use:
    /// `crypto_threads` under the `-PP` knob, else 1 (the serial path).
    pub fn effective_crypto_threads(&self) -> usize {
        if self.parallel_decrypt {
            self.crypto_threads.max(1)
        } else {
            1
        }
    }

    /// Offline randomness-pool target: 0 (no background precomputation)
    /// on the serial path.
    pub fn effective_randomness_pool(&self) -> usize {
        if self.parallel_decrypt {
            self.randomness_pool
        } else {
            0
        }
    }

    /// Offline dealer-pool target: background precomputation needs the
    /// worker pool (`parallel_decrypt`) and the split preprocessing
    /// streams of a bounded comparison policy; 0 everywhere else.
    pub fn effective_dealer_pool(&self) -> usize {
        if self.parallel_decrypt && self.comparison_bits != CompareBits::Full {
            self.dealer_pool
        } else {
            0
        }
    }

    /// The slot-width audit (ROADMAP: "slot-width audit against the gain
    /// pipeline's `n²·2^f` bound"): how wide a packed slot must be so that
    /// over a packed statistic's whole life no slot sum ever carries into
    /// its neighbour. The worst case per slot is
    ///
    /// `n²·2^f` (statistic bound) `+ 2^(int_bits−1)` (Algorithm-2
    /// signedness offset) `+ m·(p−1)` (every party's conversion mask),
    ///
    /// and the audited width is `bits(worst_case)`. Returns the width and
    /// how many such slots the keysize admits (`None` under
    /// [`Packing::Off`]).
    pub fn slot_plan(
        &self,
        parties: usize,
        n_samples: usize,
        regression: bool,
    ) -> Option<SlotPlan> {
        if self.packing == Packing::Off {
            return None;
        }
        let n = (n_samples as u128).max(4);
        let m = parties as u128;
        // Widest label multiplier per sample: class indicators are 0/1;
        // offset regression moments reach (y+1)² · 2^f ≤ 4·2^f.
        let label_bound: u128 = if regression {
            1u128 << (self.fixed.frac_bits + 2)
        } else {
            1
        };
        // Per-sample mask plaintext: the basic protocol's [α] is an exact
        // 0/1 bit, but the enhanced Eqn-10 update rebuilds [α] as a sum of
        // m share terms, so its plaintext carries a mod-p slack multiple
        // bounded by m·p at *every* level (the per-level conversion
        // re-reduces, so slack never compounds across depths).
        let alpha_bound: u128 = match self.protocol {
            Protocol::Basic => 1,
            Protocol::Enhanced => m * (MODULUS as u128),
        };
        // `max(n,4)²·2^f` keeps the documented gain-pipeline discipline as
        // the floor even when the direct product bound is smaller.
        let floor = (n * n) << self.fixed.frac_bits;
        let stat_bound = (n * alpha_bound * label_bound).max(floor);
        let offset = 1u128 << (self.fixed.int_bits - 1);
        let mask_bound = m * (MODULUS as u128 - 1);
        let worst = stat_bound + offset + mask_bound;
        let slot_bits = 128 - worst.leading_zeros();
        let max_slots = SlotCodec::max_slots(self.keysize, slot_bits);
        let slots = match self.packing {
            Packing::Off => unreachable!("handled above"),
            Packing::Auto => max_slots,
            Packing::Slots(n) => n,
        };
        Some(SlotPlan { slot_bits, slots })
    }

    /// Validate cross-parameter invariants before running a protocol.
    /// `assert_valid_for` additionally audits the packing plan against the
    /// party count (the mask term of the slot-width bound grows with `m`).
    pub fn assert_valid(&self, n_samples: usize) {
        self.assert_valid_for(n_samples, 2);
    }

    /// Full validation for a concrete party count.
    pub fn assert_valid_for(&self, n_samples: usize, parties: usize) {
        self.fixed.assert_valid();
        // Gain-pipeline overflow bound: n²·2^f < p/2 (DESIGN.md §8).
        let n_bits = (usize::BITS - n_samples.leading_zeros()) as u64;
        assert!(
            2 * n_bits as u32 + self.fixed.frac_bits + 1 < 61,
            "{n_samples} samples overflow the fixed-point gain pipeline"
        );
        // Conversion (Algorithm 2) requires N ≫ masked values.
        assert!(
            self.keysize >= 128,
            "keysize too small for share conversion"
        );
        assert!(self.tree.max_depth >= 1, "trees need at least one level");
        assert!(
            self.tree.max_splits >= 1,
            "need at least one candidate split"
        );
        if let Verification::Spot(p) = self.verification {
            assert!(
                (0.0..=1.0).contains(&p),
                "verification spot probability {p} outside [0, 1]"
            );
        }
        if self.verification.is_on() {
            assert!(
                self.packing == Packing::Off,
                "verification requires packing = off (the packed statistics \
                 pipeline carries no proofs)"
            );
        }
        if let Some(adv) = &self.adversary {
            assert!(
                self.verification.is_on(),
                "an [adversary] injection needs verification on to be observable"
            );
            assert!(
                adv.party < parties,
                "adversary party {} out of range for {parties} parties",
                adv.party
            );
        }
        if let CompareBits::Floor(n) = self.comparison_bits {
            assert!(
                (2..=self.fixed.int_bits).contains(&n),
                "comparison_bits floor {n} outside 2..={}",
                self.fixed.int_bits
            );
        }
        // Structural packing audit with the narrower classification
        // bound; [`PivotParams::assert_packing`] re-audits with the real
        // task once the data view is known (PartyContext::setup).
        self.assert_packing(parties, n_samples, false);
    }

    /// Task-aware packing audit: the configured slot count must fit the
    /// audited slot width for this task/party-count/sample-count.
    pub fn assert_packing(&self, parties: usize, n_samples: usize, regression: bool) {
        if let Some(plan) = self.slot_plan(parties, n_samples, regression) {
            let max_slots = SlotCodec::max_slots(self.keysize, plan.slot_bits);
            assert!(
                max_slots >= 1,
                "packing needs a larger keysize than {} for the audited {}-bit \
                 slots (m = {parties}, n = {n_samples})",
                self.keysize,
                plan.slot_bits
            );
            assert!(
                plan.slots >= 1 && plan.slots <= max_slots,
                "packing = {} slots exceeds the audited capacity of {max_slots} \
                 {}-bit slots for keysize {}",
                plan.slots,
                plan.slot_bits,
                self.keysize
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        PivotParams::default().assert_valid(10_000);
    }

    #[test]
    fn enhanced_disables_purity_stop() {
        let p = PivotParams::enhanced();
        assert_eq!(p.protocol, Protocol::Enhanced);
        assert!(!p.tree.stop_when_pure);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn too_many_samples_rejected() {
        PivotParams::default().assert_valid(1 << 25);
    }

    #[test]
    fn adversary_spec_parses_and_rejects() {
        let adv = AdversarySpec::parse("party 2 phase=stats index=3").unwrap();
        assert_eq!(adv.party, 2);
        assert_eq!(adv.phase, "stats");
        assert_eq!(adv.index, 3);
        // index defaults to 0.
        let adv = AdversarySpec::parse("party 0 phase=setup").unwrap();
        assert_eq!(adv.index, 0);
        assert!(AdversarySpec::parse("phase=setup").is_err());
        assert!(AdversarySpec::parse("party x phase=setup").is_err());
        assert!(AdversarySpec::parse("party 1").is_err());
        assert!(AdversarySpec::parse("party 1 phase=bogus").is_err());
        assert!(AdversarySpec::parse("party 1 phase=setup round=2").is_err());
    }

    #[test]
    fn verification_knob_validates() {
        let mut p = PivotParams {
            verification: Verification::Spot(0.25),
            ..Default::default()
        };
        p.assert_valid_for(100, 3);
        assert!(p.verification.is_on());
        assert!((p.verification.probability() - 0.25).abs() < 1e-12);
        assert_eq!(Verification::Full.probability(), 1.0);
        assert!(!Verification::Off.is_on());
        // Packing and verification are mutually exclusive.
        p.packing = Packing::Auto;
        assert!(std::panic::catch_unwind(|| p.assert_valid_for(100, 3)).is_err());
        // Spot probability outside [0,1] is rejected.
        let bad = PivotParams {
            verification: Verification::Spot(1.5),
            ..Default::default()
        };
        assert!(std::panic::catch_unwind(|| bad.assert_valid_for(100, 3)).is_err());
        // Adversary needs verification on and an in-range party.
        let adv = AdversarySpec::parse("party 2 phase=stats").unwrap();
        let mut p = PivotParams {
            adversary: Some(adv),
            ..Default::default()
        };
        assert!(std::panic::catch_unwind(|| p.assert_valid_for(100, 3)).is_err());
        p.verification = Verification::Full;
        p.assert_valid_for(100, 3);
        assert!(std::panic::catch_unwind(|| p.assert_valid_for(100, 2)).is_err());
    }

    #[test]
    fn slot_plan_audits_width_against_masks_and_stats() {
        let mut p = PivotParams::default();
        assert!(p.slot_plan(3, 100, false).is_none(), "off means no plan");
        p.packing = Packing::Auto;
        let plan = p.slot_plan(3, 100, false).expect("auto plan");
        // m = 3 masks dominate: 3·(2^61 − 2) + 2^44 + 10⁴·2^20 < 2^63.
        assert_eq!(plan.slot_bits, 63);
        // keysize 256 → ⌊255/63⌋ = 4 slots.
        assert_eq!(plan.slots, 4);
        p.assert_valid_for(100, 3);
        // More parties widen the slot: m = 8 → 8·2^61 + offsets ≳ 2^64.
        assert_eq!(p.slot_plan(8, 100, false).unwrap().slot_bits, 65);
        // The statistics term matters at large n·2^f: n = 2^15, f = 20
        // gives n²·2^f = 2^50 — still below the mask term, same width.
        assert_eq!(p.slot_plan(3, 1 << 15, false).unwrap().slot_bits, 63);
    }

    #[test]
    fn enhanced_slack_widens_the_slot() {
        // The enhanced protocol's Eqn-10 alpha slack multiplies the
        // statistics bound by m·p: n = 100, m = 3 → 300·2^61 ≈ 2^69.2.
        let mut p = PivotParams::enhanced();
        p.packing = Packing::Auto;
        p.keysize = 512;
        let classification = p.slot_plan(3, 100, false).unwrap();
        assert_eq!(classification.slot_bits, 70);
        assert_eq!(classification.slots, 7);
        // Regression moments add f + 2 = 22 bits on top.
        let regression = p.slot_plan(3, 100, true).unwrap();
        assert_eq!(regression.slot_bits, 92);
        assert_eq!(regression.slots, 5);
        // The basic protocol at the same shape stays mask-dominated.
        let basic = PivotParams {
            packing: Packing::Auto,
            keysize: 512,
            ..Default::default()
        };
        assert_eq!(basic.slot_plan(3, 100, true).unwrap().slot_bits, 63);
    }

    #[test]
    fn explicit_slot_count_validated_against_capacity() {
        let mut p = PivotParams {
            packing: Packing::Slots(2),
            ..Default::default()
        };
        p.assert_valid_for(100, 3);
        p.packing = Packing::Slots(5);
        let err = std::panic::catch_unwind(|| p.assert_valid_for(100, 3));
        assert!(err.is_err(), "5 slots exceed the keysize-256 capacity");
    }

    #[test]
    #[should_panic(expected = "exceeds the audited capacity")]
    fn zero_slot_packing_rejected() {
        let p = PivotParams {
            packing: Packing::Slots(0),
            ..Default::default()
        };
        p.assert_valid_for(100, 3);
    }
}
