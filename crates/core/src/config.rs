//! Protocol configuration (paper Table 4 parameters plus implementation
//! knobs).

use pivot_mpc::FixedConfig;
use pivot_trees::TreeParams;

/// Which Pivot protocol variant to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// §4: the trained tree is released in plaintext.
    Basic,
    /// §5: split thresholds and leaf labels stay concealed.
    Enhanced,
}

/// Full parameter set for a Pivot training/prediction session.
#[derive(Clone, Debug)]
pub struct PivotParams {
    /// Tree-growing parameters (`h`, pruning threshold, `b`).
    pub tree: TreeParams,
    /// Protocol variant.
    pub protocol: Protocol,
    /// Paillier modulus bits (the paper's "keysize": 1024 default,
    /// 512 for accuracy runs; tests use 128–256).
    pub keysize: u32,
    /// MPC fixed-point layout.
    pub fixed: FixedConfig,
    /// Parallelize threshold decryptions (the paper's `-PP` variants,
    /// which parallelize exactly this with 6 cores).
    pub parallel_decrypt: bool,
    /// Worker threads for parallel decryption (paper: 6).
    pub decrypt_threads: usize,
    /// Common seed for the simulated MPC offline phase.
    pub dealer_seed: u64,
}

impl Default for PivotParams {
    fn default() -> Self {
        PivotParams {
            tree: TreeParams::default(),
            protocol: Protocol::Basic,
            keysize: 256,
            fixed: FixedConfig::default(),
            parallel_decrypt: false,
            decrypt_threads: 6,
            dealer_seed: 0x9162_07,
        }
    }
}

impl PivotParams {
    /// Parameters for the enhanced protocol. Purity-based early stopping is
    /// disabled: checking purity would reveal one bit about concealed leaf
    /// labels (see `TreeParams::stop_when_pure`).
    pub fn enhanced() -> Self {
        let mut p = PivotParams {
            protocol: Protocol::Enhanced,
            ..Default::default()
        };
        p.tree.stop_when_pure = false;
        p
    }

    /// Validate cross-parameter invariants before running a protocol.
    pub fn assert_valid(&self, n_samples: usize) {
        self.fixed.assert_valid();
        // Gain-pipeline overflow bound: n²·2^f < p/2 (DESIGN.md §8).
        let n_bits = (usize::BITS - n_samples.leading_zeros()) as u64;
        assert!(
            2 * n_bits as u32 + self.fixed.frac_bits + 1 < 61,
            "{n_samples} samples overflow the fixed-point gain pipeline"
        );
        // Conversion (Algorithm 2) requires N ≫ masked values.
        assert!(
            self.keysize >= 128,
            "keysize too small for share conversion"
        );
        assert!(self.tree.max_depth >= 1, "trees need at least one level");
        assert!(
            self.tree.max_splits >= 1,
            "need at least one candidate split"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        PivotParams::default().assert_valid(10_000);
    }

    #[test]
    fn enhanced_disables_purity_stop() {
        let p = PivotParams::enhanced();
        assert_eq!(p.protocol, Protocol::Enhanced);
        assert!(!p.tree.stop_when_pure);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn too_many_samples_rejected() {
        PivotParams::default().assert_valid(1 << 25);
    }
}
