//! Protocol configuration (paper Table 4 parameters plus implementation
//! knobs).

use pivot_mpc::FixedConfig;
use pivot_trees::TreeParams;

/// Which Pivot protocol variant to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// §4: the trained tree is released in plaintext.
    Basic,
    /// §5: split thresholds and leaf labels stay concealed.
    Enhanced,
}

/// Full parameter set for a Pivot training/prediction session.
#[derive(Clone, Debug)]
pub struct PivotParams {
    /// Tree-growing parameters (`h`, pruning threshold, `b`).
    pub tree: TreeParams,
    /// Protocol variant.
    pub protocol: Protocol,
    /// Paillier modulus bits (the paper's "keysize": 1024 default,
    /// 512 for accuracy runs; tests use 128–256).
    pub keysize: u32,
    /// MPC fixed-point layout.
    pub fixed: FixedConfig,
    /// Parallelize the homomorphic bulk operations (the paper's `-PP`
    /// variants — §8.3 parallelizes threshold decryption with 6 cores;
    /// this reproduction batches *every* bulk crypto operation through the
    /// shared worker pool and enables the offline randomness pool).
    /// Off or on, the trained model and per-party traffic are
    /// bit-identical: batches are order-preserving and encryption nonces
    /// come from the same seeded stream in the same order.
    pub parallel_decrypt: bool,
    /// Worker threads for batched crypto operations (paper: 6).
    /// Generalizes the former `decrypt_threads`, which only fed partial
    /// decryption.
    pub crypto_threads: usize,
    /// Offline randomness-pool size: how many `r^N mod N²` nonce powers
    /// background workers keep precomputed (0 disables precomputation).
    /// Only active under `parallel_decrypt`; has no effect on outputs.
    pub randomness_pool: usize,
    /// Common seed for the simulated MPC offline phase.
    pub dealer_seed: u64,
}

impl Default for PivotParams {
    fn default() -> Self {
        PivotParams {
            tree: TreeParams::default(),
            protocol: Protocol::Basic,
            keysize: 256,
            fixed: FixedConfig::default(),
            parallel_decrypt: false,
            crypto_threads: 6,
            randomness_pool: 256,
            dealer_seed: 0x9162_07,
        }
    }
}

impl PivotParams {
    /// Parameters for the enhanced protocol. Purity-based early stopping is
    /// disabled: checking purity would reveal one bit about concealed leaf
    /// labels (see `TreeParams::stop_when_pure`).
    pub fn enhanced() -> Self {
        let mut p = PivotParams {
            protocol: Protocol::Enhanced,
            ..Default::default()
        };
        p.tree.stop_when_pure = false;
        p
    }

    /// Worker threads the batched crypto operations may use:
    /// `crypto_threads` under the `-PP` knob, else 1 (the serial path).
    pub fn effective_crypto_threads(&self) -> usize {
        if self.parallel_decrypt {
            self.crypto_threads.max(1)
        } else {
            1
        }
    }

    /// Offline randomness-pool target: 0 (no background precomputation)
    /// on the serial path.
    pub fn effective_randomness_pool(&self) -> usize {
        if self.parallel_decrypt {
            self.randomness_pool
        } else {
            0
        }
    }

    /// Validate cross-parameter invariants before running a protocol.
    pub fn assert_valid(&self, n_samples: usize) {
        self.fixed.assert_valid();
        // Gain-pipeline overflow bound: n²·2^f < p/2 (DESIGN.md §8).
        let n_bits = (usize::BITS - n_samples.leading_zeros()) as u64;
        assert!(
            2 * n_bits as u32 + self.fixed.frac_bits + 1 < 61,
            "{n_samples} samples overflow the fixed-point gain pipeline"
        );
        // Conversion (Algorithm 2) requires N ≫ masked values.
        assert!(
            self.keysize >= 128,
            "keysize too small for share conversion"
        );
        assert!(self.tree.max_depth >= 1, "trees need at least one level");
        assert!(
            self.tree.max_splits >= 1,
            "need at least one candidate split"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        PivotParams::default().assert_valid(10_000);
    }

    #[test]
    fn enhanced_disables_purity_stop() {
        let p = PivotParams::enhanced();
        assert_eq!(p.protocol, Protocol::Enhanced);
        assert!(!p.tree.stop_when_pure);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn too_many_samples_rejected() {
        PivotParams::default().assert_valid(1 << 25);
    }
}
