//! Per-client protocol context: keys, data view, transport, MPC engine.

use crate::config::PivotParams;
use crate::metrics::ProtocolMetrics;
use pivot_data::VerticalView;
use pivot_mpc::MpcEngine;
use pivot_paillier::threshold::{Combiner, SecretKeyShare};
use pivot_paillier::{fixtures, NoncePool, PublicKey};
use pivot_transport::Endpoint;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Everything one client needs to participate in the Pivot protocols.
///
/// Built once per session via [`PartyContext::setup`]; the protocol entry
/// points (`train_basic`, `train_enhanced`, prediction, ensembles,
/// baselines) all take `&mut PartyContext`. The [`Endpoint`] is
/// backend-agnostic — the same context drives a thread of an in-process
/// run and a standalone `pivot party` process over TCP.
pub struct PartyContext<'a> {
    pub ep: &'a Endpoint,
    pub pk: PublicKey,
    pub combiner: Combiner,
    pub key_share: SecretKeyShare,
    pub view: VerticalView,
    /// The label-holding client (public protocol metadata, §3.1).
    pub super_client: usize,
    /// Owner client of every global feature (public schema metadata).
    pub feature_owners: Vec<usize>,
    pub engine: MpcEngine<'a>,
    pub params: PivotParams,
    pub metrics: ProtocolMetrics,
    /// Private per-party randomness (conversion masks and other
    /// non-encryption draws). Paillier encryption nonces live in the
    /// dedicated [`NoncePool`] stream below.
    pub rng: StdRng,
    /// The party's Paillier nonce stream plus the offline randomness pool
    /// precomputing `r^N mod N²` powers during idle phases. All protocol
    /// encryptions draw from this stream in a defined order, so the
    /// batched/pooled path is bit-identical to the serial path.
    pub nonces: Arc<NoncePool>,
    /// Task override for subprotocols (GBDT trains *regression* trees on
    /// residuals even when the outer task is classification).
    pub task_override: Option<pivot_data::Task>,
    /// The malicious-model verification plane ([`crate::verify`]), built
    /// when `params.verification` is on. `None` means every hook is a
    /// no-op and the transcript is bit-identical to honest-but-curious.
    pub verify: Option<crate::verify::VerifyPlane>,
    /// Crash-recovery sink notified at level/tree barriers
    /// ([`crate::checkpoint`]). `None` (the default) keeps every barrier a
    /// no-op and the transcript bit-identical to a checkpoint-free run.
    pub checkpoint: Option<Box<dyn crate::checkpoint::CheckpointSink>>,
    /// Barriers fired so far (the checkpoint ordinal clock).
    checkpoint_ordinal: u64,
}

impl<'a> PartyContext<'a> {
    /// Initialization stage (§3.4): agree on hyper-parameters, generate the
    /// threshold keys, discover the super client.
    ///
    /// Key material comes from the deterministic fixture dealer
    /// ([`pivot_paillier::fixtures`]) — the same trusted-dealer setup the
    /// original implementation gets from libhcs.
    pub fn setup(ep: &'a Endpoint, view: VerticalView, params: PivotParams) -> Self {
        let _phase = pivot_trace::phase_span("setup");
        params.assert_valid_for(view.num_samples(), ep.parties());
        // assert_valid_for audits packing with the classification bound;
        // regression widens the slots, so re-audit with the real task.
        if matches!(view.task, pivot_data::Task::Regression) {
            params.assert_packing(ep.parties(), view.num_samples(), true);
        }
        let m = ep.parties();
        let keys = fixtures::threshold_keys(m, params.keysize);
        let key_share = keys.shares[ep.id()].clone();

        // Discover the super client (whoever holds labels announces it).
        let flags = ep.exchange_all(&view.is_super_client());
        let supers: Vec<usize> = flags
            .iter()
            .enumerate()
            .filter_map(|(i, &f)| f.then_some(i))
            .collect();
        assert_eq!(supers.len(), 1, "exactly one client must hold the labels");
        let super_client = supers[0];

        // Publish the feature-ownership schema (indices only, no values).
        let all_indices = ep.exchange_all(&view.feature_indices.clone());
        let total_features: usize = all_indices.iter().map(|v| v.len()).sum();
        let mut feature_owners = vec![usize::MAX; total_features];
        for (client, indices) in all_indices.iter().enumerate() {
            for &j in indices {
                feature_owners[j] = client;
            }
        }
        assert!(
            feature_owners.iter().all(|&o| o != usize::MAX),
            "feature ownership must cover every column"
        );

        let mut engine = MpcEngine::new(ep, params.dealer_seed, params.fixed);
        engine.configure_comparisons(params.comparison_bits, params.effective_dealer_pool());
        // Key generation / view exchange is an idle phase: start the
        // offline dealer precompute alongside the nonce prefill below.
        engine.dealer_refill();
        let rng =
            StdRng::seed_from_u64(params.dealer_seed ^ 0xACE0_FBA5E ^ ((ep.id() as u64 + 1) << 32));
        // Dedicated per-party nonce stream; keygen/setup is an idle phase,
        // so kick off the first background prefill right here.
        let nonce_seed =
            params.dealer_seed ^ 0x0FF1_CE_9A11 ^ ((ep.id() as u64 + 1).rotate_left(40));
        let nonces = NoncePool::new(
            keys.pk.clone(),
            nonce_seed,
            params.effective_randomness_pool(),
        );
        nonces.refill();
        // Verification needs the encryption nonces as proof witnesses:
        // turn on retention before the first protocol encryption.
        let verify = params.verification.is_on().then(|| {
            nonces.retain_witnesses(true);
            crate::verify::VerifyPlane::new(&params, ep.id())
        });
        PartyContext {
            ep,
            pk: keys.pk,
            combiner: keys.combiner,
            key_share,
            view,
            super_client,
            feature_owners,
            engine,
            params,
            metrics: ProtocolMetrics::new(),
            rng,
            nonces,
            task_override: None,
            verify,
            checkpoint: None,
            checkpoint_ordinal: 0,
        }
    }

    /// Fire the barrier hook at the end of a tree level. Called by both
    /// trainers after the inter-level pool refill; a no-op without a
    /// [`crate::checkpoint::CheckpointSink`] installed.
    pub fn level_barrier(&mut self, level: u64) {
        self.fire_barrier(level);
    }

    /// Fire the barrier hook after one ensemble member (RF tree / GBDT
    /// round tree) finishes. The "level" reported is the running barrier
    /// ordinal, since ensemble members have no level of their own.
    pub fn tree_barrier(&mut self) {
        self.fire_barrier(self.checkpoint_ordinal + 1);
    }

    fn fire_barrier(&mut self, level: u64) {
        if self.checkpoint.is_none() {
            return;
        }
        let _phase = pivot_trace::phase_span("checkpoint");
        let (mpc_rounds, secure_mults, secure_comparisons, _) = self.engine.counters().snapshot();
        let nonce = self.nonces.stats();
        let dealer = self.engine.dealer_pool_stats();
        let cursors = crate::checkpoint::StateCursors {
            mpc_rounds,
            secure_mults,
            secure_comparisons,
            nonces_drawn: nonce.hits + nonce.misses,
            dealer_rows: dealer.triple_hits
                + dealer.triple_misses
                + dealer.masked_hits
                + dealer.masked_misses,
            bytes_sent: self.ep.stats().bytes_sent(),
        };
        self.checkpoint_ordinal += 1;
        let meta = crate::checkpoint::BarrierMeta {
            ordinal: self.checkpoint_ordinal,
            level,
            cursors,
        };
        let ep = self.ep;
        if let Some(sink) = self.checkpoint.as_mut() {
            sink.at_barrier(ep, &meta);
        }
    }

    /// Worker threads available to this party's batched crypto operations
    /// (1 on the serial path).
    pub fn crypto_threads(&self) -> usize {
        self.params.effective_crypto_threads()
    }

    /// The packing codec for this run, when `params.packing` is enabled:
    /// slot width audited against this run's `m`, `n`, task and protocol
    /// (see [`PivotParams::slot_plan`]).
    pub fn packing_codec(&self) -> Option<pivot_paillier::SlotCodec> {
        let regression = matches!(self.current_task(), pivot_data::Task::Regression);
        self.params
            .slot_plan(self.parties(), self.num_samples(), regression)
            .map(|plan| plan.codec(&self.params.fixed))
    }

    /// The task the *current* (sub)protocol trains for.
    pub fn current_task(&self) -> pivot_data::Task {
        self.task_override.unwrap_or(self.view.task)
    }

    /// This client's id.
    pub fn id(&self) -> usize {
        self.ep.id()
    }

    /// Number of clients `m`.
    pub fn parties(&self) -> usize {
        self.ep.parties()
    }

    /// Whether this client holds the labels.
    pub fn is_super_client(&self) -> bool {
        self.id() == self.super_client
    }

    /// Number of training samples `n` (public).
    pub fn num_samples(&self) -> usize {
        self.view.num_samples()
    }
}
