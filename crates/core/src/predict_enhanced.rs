//! Secret-sharing based prediction on the concealed model (§5.2, "secret
//! sharing based model prediction"): thresholds and leaf labels are
//! converted into shares, feature values are shared by their owners, every
//! internal node is evaluated with one secure comparison, and path markers
//! are combined multiplicatively so only the final output is opened.

use crate::config::Scheduling;
use crate::conversion::{ciphers_to_shares, packed_share_conversion_groups};
use crate::metrics::Stage;
use crate::model::{ConcealedNode, ConcealedTree};
use crate::party::PartyContext;
use crate::train_enhanced::threshold_offset_bits;
use pivot_bignum::BigUint;
use pivot_data::Task;
use pivot_mpc::{CompareBits, Fp, Share};
use std::collections::{BTreeMap, HashMap};

/// Jointly predict one sample on a concealed tree.
pub fn predict(ctx: &mut PartyContext<'_>, tree: &ConcealedTree, local_sample: &[f64]) -> f64 {
    predict_batch(ctx, tree, std::slice::from_ref(&local_sample.to_vec()))[0]
}

/// Batched secret-shared prediction.
pub fn predict_batch(
    ctx: &mut PartyContext<'_>,
    tree: &ConcealedTree,
    local_samples: &[Vec<f64>],
) -> Vec<f64> {
    let n_samples = local_samples.len();
    if n_samples == 0 {
        return Vec::new();
    }
    // Convert the concealed model into shares once per batch.
    let internals = tree.internals();
    let leaf_paths = tree.leaf_paths();
    let started = std::time::Instant::now();
    let (thresholds, leaf_values) = {
        let mut cts = Vec::with_capacity(internals.len() + leaf_paths.len());
        for (_, _, _, enc_t) in &internals {
            cts.push((*enc_t).clone());
        }
        for (leaf_id, _) in &leaf_paths {
            match &tree.nodes[*leaf_id] {
                ConcealedNode::Leaf { enc_value } => cts.push(enc_value.clone()),
                ConcealedNode::Internal { .. } => unreachable!("leaf ids are leaves"),
            }
        }
        let shares = if ctx.params.scheduling == Scheduling::Pipelined {
            // Pipelined schedule: pack the model conversion under per-kind
            // audited bounds. Thresholds are PIR dot products — a
            // `≤ max_splits`-term sum of `< m·p` λ-slack ciphertexts times
            // offset-encoded values `< 2^(off_bits+1)`; leaves are §5.2
            // share sums `< m·p`. Both groups settle in one decryption
            // round; narrow leaf slots pack several-fold even at the
            // enhanced keysize floor.
            let p = BigUint::from_u64(pivot_mpc::MODULUS);
            let m_p = &BigUint::from_u64(ctx.parties() as u64) * &p;
            let splits = BigUint::from_u64(ctx.params.tree.max_splits.max(1) as u64);
            let t_bound = &(&m_p * &splits) * &BigUint::pow2(threshold_offset_bits(ctx) + 1);
            let (t_cts, l_cts) = cts.split_at(internals.len());
            let groups = packed_share_conversion_groups(
                ctx,
                &[(t_cts, t_bound.bits()), (l_cts, m_p.bits())],
            );
            let mut flat = Vec::with_capacity(cts.len());
            for group in groups {
                flat.extend(group);
            }
            flat
        } else {
            ciphers_to_shares(ctx, &cts)
        };
        let off = Fp::pow2(threshold_offset_bits(ctx));
        let party = ctx.id();
        let thresholds: Vec<Share> = shares[..internals.len()]
            .iter()
            .map(|s| s.sub_public(party, off))
            .collect();
        let leaves = shares[internals.len()..].to_vec();
        (thresholds, leaves)
    };
    ctx.metrics.add_time(Stage::Prediction, started.elapsed());

    // Owners share their feature values for every (internal node, sample).
    // node_feature_shares[node_pos][sample]
    let f = ctx.params.fixed.frac_bits;
    let mut node_feature_shares: Vec<Vec<Share>> = vec![Vec::new(); internals.len()];
    for owner in 0..ctx.parties() {
        let owned: Vec<usize> = internals
            .iter()
            .enumerate()
            .filter(|(_, (_, client, _, _))| *client == owner)
            .map(|(pos, _)| pos)
            .collect();
        if owned.is_empty() {
            continue;
        }
        let values: Option<Vec<Fp>> = (ctx.id() == owner).then(|| {
            let mut vals = Vec::with_capacity(owned.len() * n_samples);
            for &pos in &owned {
                let (_, _, feature_global, _) = internals[pos];
                let local_idx = ctx
                    .view
                    .feature_indices
                    .iter()
                    .position(|&g| g == feature_global)
                    .expect("owner holds the feature");
                for sample in local_samples {
                    let scaled = (sample[local_idx] * (1u64 << f) as f64).round();
                    vals.push(Fp::from_i64(scaled as i64));
                }
            }
            vals
        });
        let shared = ctx.engine.share_input(owner, values.as_deref());
        for (slot, &pos) in owned.iter().enumerate() {
            node_feature_shares[pos] = shared[slot * n_samples..(slot + 1) * n_samples].to_vec();
        }
    }

    let started = std::time::Instant::now();
    let task = ctx.current_task();
    let result = {
        // One batched secure comparison evaluates every node × sample:
        // right = 1[τ < x]; left marker bit = 1 − right.
        let mut diffs = Vec::with_capacity(internals.len() * n_samples);
        for (pos, t) in thresholds.iter().enumerate() {
            for s in 0..n_samples {
                diffs.push(*t - node_feature_shares[pos][s]);
            }
        }
        let rights = if ctx.params.comparison_bits == CompareBits::Full {
            ctx.engine.ltz_vec(&diffs)
        } else {
            bounded_node_comparisons(ctx, &internals, local_samples, &diffs, n_samples)
        };
        let party = ctx.id();
        let one = Share::from_public(party, Fp::ONE);

        // Node-id → position in `internals`.
        let node_pos: HashMap<usize, usize> = internals
            .iter()
            .enumerate()
            .map(|(pos, (id, ..))| (*id, pos))
            .collect();

        // Walk the tree top-down, one multiplication batch per level:
        // marker(left) = marker·left_bit, marker(right) = marker − marker(left).
        let mut markers: HashMap<usize, Vec<Share>> = HashMap::new();
        markers.insert(tree.root, vec![one; n_samples]);
        let mut frontier = vec![tree.root];
        while !frontier.is_empty() {
            let mut lhs = Vec::new();
            let mut rhs = Vec::new();
            let mut meta = Vec::new();
            let mut next = Vec::new();
            for &id in &frontier {
                if let ConcealedNode::Internal { left, right, .. } = &tree.nodes[id] {
                    let pos = node_pos[&id];
                    let parent = markers[&id].clone();
                    for s in 0..n_samples {
                        lhs.push(parent[s]);
                        rhs.push(one - rights[pos * n_samples + s]);
                    }
                    meta.push((id, *left, *right));
                    next.push(*left);
                    next.push(*right);
                }
            }
            if meta.is_empty() {
                break;
            }
            let products = ctx.engine.mul_vec(&lhs, &rhs);
            for (i, (id, left, right)) in meta.iter().enumerate() {
                let left_marker: Vec<Share> = products[i * n_samples..(i + 1) * n_samples].to_vec();
                let parent = markers[id].clone();
                let right_marker: Vec<Share> = parent
                    .iter()
                    .zip(&left_marker)
                    .map(|(&p, &l)| p - l)
                    .collect();
                markers.insert(*left, left_marker);
                markers.insert(*right, right_marker);
            }
            frontier = next;
        }

        // prediction = Σ_leaf marker·z (one multiplication batch), opened.
        let mut lhs = Vec::with_capacity(leaf_paths.len() * n_samples);
        let mut rhs = Vec::with_capacity(leaf_paths.len() * n_samples);
        for (li, (leaf_id, _)) in leaf_paths.iter().enumerate() {
            let marker = &markers[leaf_id];
            for s in 0..n_samples {
                lhs.push(marker[s]);
                rhs.push(leaf_values[li]);
            }
        }
        let prods = ctx.engine.mul_vec(&lhs, &rhs);
        let sums: Vec<Share> = (0..n_samples)
            .map(|s| {
                (0..leaf_paths.len())
                    .map(|li| prods[li * n_samples + s])
                    .fold(Share::ZERO, |acc, x| acc + x)
            })
            .collect();
        let opened = ctx.engine.open_vec(&sums);
        opened
            .iter()
            .map(|&v| match task {
                Task::Classification { .. } => v.value() as f64,
                Task::Regression => ctx.params.fixed.decode(v),
            })
            .collect()
    };
    ctx.metrics.add_time(Stage::Prediction, started.elapsed());
    result
}

/// Node comparisons under a public per-feature range contract. Each split
/// owner publishes a power-of-two magnitude bound on its feature's scaled
/// values — training column (every candidate threshold is a training value
/// or a midpoint of two) plus the prediction batch — so `τ − x` provably
/// fits in `bound + 2` signed bits and the sign test pays the contract
/// width instead of the full `int_bits` ladder. The contract reveals only
/// a coarse range of each split feature, whose identity the enhanced
/// protocol already discloses (§5.2). Nodes sharing a width run as one
/// batch; distinct widths run in ascending order on every party.
fn bounded_node_comparisons(
    ctx: &mut PartyContext<'_>,
    internals: &[(usize, usize, usize, &pivot_paillier::Ciphertext)],
    local_samples: &[Vec<f64>],
    diffs: &[Share],
    n_samples: usize,
) -> Vec<Share> {
    let me = ctx.id();
    let f = ctx.params.fixed.frac_bits;
    let mine: Vec<usize> = internals
        .iter()
        .map(|&(_, owner, feature_global, _)| {
            if owner != me {
                return 0;
            }
            let local_idx = ctx
                .view
                .feature_indices
                .iter()
                .position(|&g| g == feature_global)
                .expect("owner holds the feature");
            let col_max = (0..ctx.view.num_samples())
                .map(|i| ctx.view.features[i][local_idx].abs())
                .chain(local_samples.iter().map(|s| s[local_idx].abs()))
                .fold(0.0_f64, f64::max);
            let scaled = (col_max * (1u64 << f) as f64).round() as u64;
            (u64::BITS - scaled.leading_zeros()) as usize
        })
        .collect();
    // Element-wise max over the published contracts: only the owner's slot
    // is non-zero, but taking the max keeps the reduction symmetric.
    let all = ctx.ep.exchange_all(&mine);
    let mut groups: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for pos in 0..internals.len() {
        let bound = all
            .iter()
            .map(|per_party| per_party[pos])
            .max()
            .unwrap_or(0);
        groups.entry(bound as u32 + 2).or_default().push(pos);
    }
    let mut rights = vec![Share::ZERO; diffs.len()];
    for (k, positions) in groups {
        let batch: Vec<Share> = positions
            .iter()
            .flat_map(|&pos| {
                diffs[pos * n_samples..(pos + 1) * n_samples]
                    .iter()
                    .copied()
            })
            .collect();
        let res = ctx.engine.ltz_vec_bounded(&batch, k);
        for (i, &pos) in positions.iter().enumerate() {
            rights[pos * n_samples..(pos + 1) * n_samples]
                .copy_from_slice(&res[i * n_samples..(i + 1) * n_samples]);
        }
    }
    rights
}
