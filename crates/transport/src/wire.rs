//! Minimal binary wire codec.
//!
//! Deliberately simple: little-endian fixed-width integers, `u64`
//! length-prefixed sequences. Every protocol message implements [`Wire`];
//! the encoded length is what [`crate::NetStats`] accounts as network
//! traffic.

use bytes::{Buf, BufMut};
use pivot_bignum::BigUint;
use std::fmt;

/// Decoding error (truncated or malformed buffer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub &'static str);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// Binary serialization used for all inter-party messages.
pub trait Wire: Sized {
    /// Append the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decode a value from the front of `buf`, advancing it.
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError>;

    /// Encode into a fresh buffer.
    fn to_wire(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Decode from a complete buffer, requiring full consumption.
    fn from_wire(mut buf: &[u8]) -> Result<Self, WireError> {
        let v = Self::decode(&mut buf)?;
        if !buf.is_empty() {
            return Err(WireError("trailing bytes after message"));
        }
        Ok(v)
    }
}

fn need(buf: &[u8], n: usize) -> Result<(), WireError> {
    if buf.len() < n {
        Err(WireError("buffer underrun"))
    } else {
        Ok(())
    }
}

macro_rules! wire_int {
    ($ty:ty, $put:ident, $get:ident, $bytes:expr) => {
        impl Wire for $ty {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.$put(*self);
            }
            fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
                need(buf, $bytes)?;
                Ok(buf.$get())
            }
        }
    };
}

wire_int!(u8, put_u8, get_u8, 1);
wire_int!(u16, put_u16_le, get_u16_le, 2);
wire_int!(u32, put_u32_le, get_u32_le, 4);
wire_int!(u64, put_u64_le, get_u64_le, 8);
wire_int!(u128, put_u128_le, get_u128_le, 16);
wire_int!(i64, put_i64_le, get_i64_le, 8);
wire_int!(i128, put_i128_le, get_i128_le, 16);
wire_int!(f64, put_f64_le, get_f64_le, 8);

impl Wire for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u8(u8::from(*self));
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        need(buf, 1)?;
        match buf.get_u8() {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError("invalid bool")),
        }
    }
}

impl Wire for usize {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u64_le(*self as u64);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        need(buf, 8)?;
        Ok(buf.get_u64_le() as usize)
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.as_bytes().to_vec().encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let bytes = Vec::<u8>::decode(buf)?;
        String::from_utf8(bytes).map_err(|_| WireError("invalid utf8"))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u64_le(self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        need(buf, 8)?;
        let len = buf.get_u64_le() as usize;
        // Guard against hostile lengths before allocating.
        if len > buf.len().saturating_mul(8).max(1 << 20) {
            return Err(WireError("implausible sequence length"));
        }
        let mut out = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        need(buf, 1)?;
        match buf.get_u8() {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            _ => Err(WireError("invalid option tag")),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
}

impl Wire for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}
    fn decode(_buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(())
    }
}

impl Wire for BigUint {
    fn encode(&self, buf: &mut Vec<u8>) {
        let bytes = self.to_bytes_be();
        buf.put_u64_le(bytes.len() as u64);
        buf.put_slice(&bytes);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        need(buf, 8)?;
        let len = buf.get_u64_le() as usize;
        need(buf, len)?;
        let v = BigUint::from_bytes_be(&buf[..len]);
        buf.advance(len);
        Ok(v)
    }
}

/// Coalesced-frame envelope: `[u64 count][u64 len, payload]…`.
///
/// When an endpoint runs in coalescing mode, every link frame is one
/// envelope holding the independent protocol messages staged for that
/// peer since the last flush. The member payloads are byte-identical to
/// what the non-coalesced path would have sent as separate frames, so
/// [`crate::NetStats`] can account members and envelope overhead
/// separately and the per-message byte totals stay comparable across
/// scheduling modes.
pub fn encode_envelope(msgs: &[Vec<u8>]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(
        envelope_overhead(msgs.len()) + msgs.iter().map(Vec::len).sum::<usize>(),
    );
    buf.put_u64_le(msgs.len() as u64);
    for msg in msgs {
        buf.put_u64_le(msg.len() as u64);
        buf.put_slice(msg);
    }
    buf
}

/// Split an envelope back into its member payloads. The whole frame must
/// be consumed — trailing bytes mean a desynced stream, same contract as
/// [`Wire::from_wire`].
pub fn decode_envelope(frame: &[u8]) -> Result<Vec<Vec<u8>>, WireError> {
    let mut buf = frame;
    need(buf, 8)?;
    let count = buf.get_u64_le() as usize;
    if count > buf.len() / 8 + 1 {
        return Err(WireError("implausible envelope count"));
    }
    let mut msgs = Vec::with_capacity(count);
    for _ in 0..count {
        need(buf, 8)?;
        let len = buf.get_u64_le() as usize;
        need(buf, len)?;
        msgs.push(buf[..len].to_vec());
        buf.advance(len);
    }
    if !buf.is_empty() {
        return Err(WireError("trailing bytes after envelope"));
    }
    Ok(msgs)
}

/// Framing bytes an envelope adds on top of its member payloads.
pub fn envelope_overhead(count: usize) -> usize {
    8 * (count + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let encoded = v.to_wire();
        assert_eq!(T::from_wire(&encoded).unwrap(), v);
    }

    #[test]
    fn primitive_round_trips() {
        round_trip(42u8);
        round_trip(0xdeadu16);
        round_trip(0xdead_beefu32);
        round_trip(u64::MAX);
        round_trip(u128::MAX - 5);
        round_trip(-42i64);
        round_trip(-42i128);
        round_trip(3.5f64);
        round_trip(true);
        round_trip(false);
        round_trip(123usize);
        round_trip(());
    }

    #[test]
    fn composite_round_trips() {
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip(Some(5u64));
        round_trip(Option::<u64>::None);
        round_trip((1u64, true));
        round_trip((1u64, 2u64, vec![3u64]));
        round_trip("hello pivot".to_string());
        round_trip(vec![vec![1u8, 2], vec![]]);
    }

    #[test]
    fn biguint_round_trips() {
        round_trip(BigUint::zero());
        round_trip(BigUint::from_u64(7));
        round_trip(BigUint::from_hex("deadbeefcafebabe0123456789abcdef00").unwrap());
    }

    #[test]
    fn truncated_buffer_errors() {
        let encoded = 12345u64.to_wire();
        assert!(u64::from_wire(&encoded[..4]).is_err());
        let vec_enc = vec![1u64, 2].to_wire();
        assert!(Vec::<u64>::from_wire(&vec_enc[..10]).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut encoded = 1u64.to_wire();
        encoded.push(0);
        assert!(u64::from_wire(&encoded).is_err());
    }

    #[test]
    fn invalid_bool_rejected() {
        assert!(bool::from_wire(&[7]).is_err());
    }

    #[test]
    fn envelope_round_trips() {
        let msgs = vec![vec![1u8, 2, 3], vec![], vec![9u8; 100]];
        let frame = encode_envelope(&msgs);
        assert_eq!(
            frame.len(),
            envelope_overhead(3) + msgs.iter().map(Vec::len).sum::<usize>()
        );
        assert_eq!(decode_envelope(&frame).unwrap(), msgs);
        assert_eq!(
            decode_envelope(&encode_envelope(&[])).unwrap(),
            Vec::<Vec<u8>>::new()
        );
    }

    #[test]
    fn envelope_rejects_trailing_and_truncated() {
        let mut frame = encode_envelope(&[vec![1u8, 2]]);
        frame.push(0);
        assert!(decode_envelope(&frame).is_err());
        let frame = encode_envelope(&[vec![1u8, 2]]);
        assert!(decode_envelope(&frame[..frame.len() - 1]).is_err());
        assert!(decode_envelope(&[]).is_err());
    }
}
