//! Network traffic accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared counters for one party's traffic. All endpoints of a network hold
/// `Arc`s to their own stats; protocol harnesses read them afterwards.
#[derive(Debug, Default)]
pub struct NetStats {
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    messages_sent: AtomicU64,
    messages_received: AtomicU64,
    // Session-layer health counters. Unlike the traffic counters these
    // describe the whole run, not a phase: `reset` (called between
    // train/predict snapshots) leaves them alone.
    connect_retries: AtomicU64,
    reconnects: AtomicU64,
    replayed_frames: AtomicU64,
    faults_injected: AtomicU64,
    rejoins: AtomicU64,
}

impl NetStats {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    pub(crate) fn record_send(&self, bytes: usize) {
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_recv(&self, bytes: usize) {
        self.bytes_received
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.messages_received.fetch_add(1, Ordering::Relaxed);
    }

    /// Account coalesced-envelope framing on the send side: bytes only —
    /// the member messages were already counted individually when staged,
    /// so message counts stay comparable across scheduling modes.
    pub(crate) fn record_send_overhead(&self, bytes: usize) {
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Receive-side counterpart of [`NetStats::record_send_overhead`].
    pub(crate) fn record_recv_overhead(&self, bytes: usize) {
        self.bytes_received
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Total bytes this party put on the wire.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Total bytes this party consumed from the wire.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    /// Number of messages sent.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent.load(Ordering::Relaxed)
    }

    /// Number of messages received.
    pub fn messages_received(&self) -> u64 {
        self.messages_received.load(Ordering::Relaxed)
    }

    /// Record one failed dial attempt (rendezvous or reconnect backoff).
    pub(crate) fn record_connect_retry(&self) {
        self.connect_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one successfully resumed session after a link drop.
    pub(crate) fn record_reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Record frames retransmitted from the ring during a resume.
    pub(crate) fn record_replayed_frames(&self, n: u64) {
        self.replayed_frames.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one fault fired from a scenario `[faults]` plan.
    pub(crate) fn record_fault_injected(&self) {
        self.faults_injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one session spliced back together across a full process
    /// restart (checkpoint resume), as opposed to a plain socket redial.
    pub(crate) fn record_rejoin(&self) {
        self.rejoins.fetch_add(1, Ordering::Relaxed);
    }

    /// Failed dial attempts across rendezvous and reconnects.
    pub fn connect_retries(&self) -> u64 {
        self.connect_retries.load(Ordering::Relaxed)
    }

    /// Sessions resumed after a link drop.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Frames retransmitted from the ring during resumes.
    pub fn replayed_frames(&self) -> u64 {
        self.replayed_frames.load(Ordering::Relaxed)
    }

    /// Faults fired from the scenario `[faults]` plan on this party.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected.load(Ordering::Relaxed)
    }

    /// Sessions spliced across a full process restart.
    pub fn rejoins(&self) -> u64 {
        self.rejoins.load(Ordering::Relaxed)
    }

    /// Reset the traffic counters (between benchmark phases). The
    /// session-layer health counters (`connect_retries`, `reconnects`,
    /// `replayed_frames`, `faults_injected`) are whole-run totals and
    /// deliberately survive.
    pub fn reset(&self) {
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.bytes_received.store(0, Ordering::Relaxed);
        self.messages_sent.store(0, Ordering::Relaxed);
        self.messages_received.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_preserves_session_health_counters() {
        let stats = NetStats::new();
        stats.record_send(10);
        stats.record_recv(10);
        stats.record_connect_retry();
        stats.record_reconnect();
        stats.record_replayed_frames(3);
        stats.record_fault_injected();
        stats.record_rejoin();
        stats.reset();
        assert_eq!(stats.bytes_sent(), 0);
        assert_eq!(stats.messages_received(), 0);
        assert_eq!(stats.connect_retries(), 1);
        assert_eq!(stats.reconnects(), 1);
        assert_eq!(stats.replayed_frames(), 3);
        assert_eq!(stats.faults_injected(), 1);
        assert_eq!(stats.rejoins(), 1);
    }
}
