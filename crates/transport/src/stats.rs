//! Network traffic accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared counters for one party's traffic. All endpoints of a network hold
/// `Arc`s to their own stats; protocol harnesses read them afterwards.
#[derive(Debug, Default)]
pub struct NetStats {
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    messages_sent: AtomicU64,
    messages_received: AtomicU64,
}

impl NetStats {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    pub(crate) fn record_send(&self, bytes: usize) {
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_recv(&self, bytes: usize) {
        self.bytes_received
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.messages_received.fetch_add(1, Ordering::Relaxed);
    }

    /// Account coalesced-envelope framing on the send side: bytes only —
    /// the member messages were already counted individually when staged,
    /// so message counts stay comparable across scheduling modes.
    pub(crate) fn record_send_overhead(&self, bytes: usize) {
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Receive-side counterpart of [`NetStats::record_send_overhead`].
    pub(crate) fn record_recv_overhead(&self, bytes: usize) {
        self.bytes_received
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Total bytes this party put on the wire.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Total bytes this party consumed from the wire.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    /// Number of messages sent.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent.load(Ordering::Relaxed)
    }

    /// Number of messages received.
    pub fn messages_received(&self) -> u64 {
        self.messages_received.load(Ordering::Relaxed)
    }

    /// Reset all counters (between benchmark phases).
    pub fn reset(&self) {
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.bytes_received.store(0, Ordering::Relaxed);
        self.messages_sent.store(0, Ordering::Relaxed);
        self.messages_received.store(0, Ordering::Relaxed);
    }
}
