//! The byte-level transport seam: one [`Link`] per peer.
//!
//! An [`crate::Endpoint`] owns `m - 1` boxed links and implements every
//! collective (send/recv/broadcast/gather/scatter/exchange) on top of the
//! two primitive operations defined here. Backends only move opaque byte
//! buffers; message framing, traffic accounting, and LAN simulation all
//! live in the endpoint, so every backend reports identical byte counts
//! for identical protocol runs.
//!
//! Shipped backends: [`ChannelLink`] (in-process, crossbeam channels) and
//! [`crate::tcp::TcpLink`] (one socket per peer, length-prefixed frames).

use crate::stats::NetStats;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Why a link operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// No message arrived within the deadline; the protocol is likely
    /// wedged (a peer crashed, deadlocked, or diverged in round order).
    Timeout(Duration),
    /// The peer hung up or the underlying connection broke.
    Disconnected(String),
    /// The peer sent bytes that cannot be a valid frame (implausible
    /// length, bad tag, sequence gap) — a desynced or hostile stream, not
    /// a liveness problem, so reconnecting would not help.
    Malformed(String),
    /// The peer stayed gone past the configured rejoin deadline: the
    /// session parked at the barrier waiting for a restart that never
    /// came.
    PeerLost { peer: usize, waited: Duration },
    /// A resume/restart needed a frame the retransmit ring no longer
    /// holds; `missing_seq` is the first sequence number that cannot be
    /// replayed.
    ResumeGap { peer: usize, missing_seq: u64 },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Timeout(after) => write!(f, "no message within {after:?}"),
            LinkError::Disconnected(why) => write!(f, "peer disconnected ({why})"),
            LinkError::Malformed(why) => write!(f, "malformed frame ({why})"),
            LinkError::PeerLost { peer, waited } => write!(
                f,
                "party {peer} did not rejoin within {waited:?} (rejoin deadline expired)"
            ),
            LinkError::ResumeGap { peer, missing_seq } => write!(
                f,
                "replay gap: party {peer} needs seq {missing_seq} but the retransmit ring starts later"
            ),
        }
    }
}

impl std::error::Error for LinkError {}

/// A bidirectional, ordered, reliable byte pipe to one peer.
///
/// Implementations must preserve message boundaries and FIFO order per
/// direction — exactly the guarantees of a framed TCP stream or a pair of
/// channels. `send_bytes` should not block on the peer making progress
/// (buffer internally if needed): the SPMD collectives assume every party
/// can finish its sends before starting its receives.
pub trait Link: Send {
    /// The party id on the other end.
    fn peer(&self) -> usize;

    /// Queue one message for delivery to the peer.
    fn send_bytes(&self, bytes: Vec<u8>) -> Result<(), LinkError>;

    /// Block until the next message from the peer arrives, up to `timeout`.
    fn recv_bytes(&self, timeout: Duration) -> Result<Vec<u8>, LinkError>;

    /// Hand the owning endpoint's traffic counters to the link, so
    /// backends with internal machinery (reconnect sessions, fault
    /// wrappers) can record session-health events (`reconnects`,
    /// `replayed_frames`, …) against the party's [`NetStats`]. Called
    /// once from `Endpoint::from_links`; backends with nothing to report
    /// keep the default no-op.
    fn attach_stats(&self, _stats: &Arc<NetStats>) {}

    /// Announce a durable checkpoint to the peer: the endpoint has
    /// durably recorded the first `_delivered` frames of the peer's
    /// stream, so retransmit retention may roll forward. Best-effort and
    /// transport-internal — backends without barrier-aligned retention
    /// (in-process channels) keep the default no-op, and a lost
    /// announcement merely makes the peer retain frames longer.
    fn checkpoint_mark(&self, _delivered: u64) {}
}

/// In-process backend: a pair of unbounded channels per peer.
pub struct ChannelLink {
    peer: usize,
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

impl ChannelLink {
    /// Wire both directions of one party pair, returning `(a→b view,
    /// b→a view)` — i.e. the link party `a` holds for peer `b`, and the
    /// link party `b` holds for peer `a`.
    pub fn pair(a: usize, b: usize) -> (ChannelLink, ChannelLink) {
        assert_ne!(a, b, "a link connects two distinct parties");
        let (a_to_b_tx, a_to_b_rx) = unbounded();
        let (b_to_a_tx, b_to_a_rx) = unbounded();
        (
            ChannelLink {
                peer: b,
                tx: a_to_b_tx,
                rx: b_to_a_rx,
            },
            ChannelLink {
                peer: a,
                tx: b_to_a_tx,
                rx: a_to_b_rx,
            },
        )
    }
}

impl Link for ChannelLink {
    fn peer(&self) -> usize {
        self.peer
    }

    fn send_bytes(&self, bytes: Vec<u8>) -> Result<(), LinkError> {
        self.tx
            .send(bytes)
            .map_err(|_| LinkError::Disconnected("channel receiver dropped".into()))
    }

    fn recv_bytes(&self, timeout: Duration) -> Result<Vec<u8>, LinkError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => LinkError::Timeout(timeout),
            RecvTimeoutError::Disconnected => {
                LinkError::Disconnected("channel sender dropped".into())
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_pair_is_full_duplex() {
        let (at_a, at_b) = ChannelLink::pair(0, 1);
        assert_eq!(at_a.peer(), 1);
        assert_eq!(at_b.peer(), 0);
        at_a.send_bytes(vec![1, 2, 3]).unwrap();
        at_b.send_bytes(vec![9]).unwrap();
        assert_eq!(
            at_b.recv_bytes(Duration::from_secs(1)).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(at_a.recv_bytes(Duration::from_secs(1)).unwrap(), vec![9]);
    }

    #[test]
    fn recv_times_out_and_reports_duration() {
        let (at_a, _at_b) = ChannelLink::pair(0, 1);
        let err = at_a.recv_bytes(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, LinkError::Timeout(Duration::from_millis(10)));
        assert!(err.to_string().contains("10ms"), "{err}");
    }

    #[test]
    fn dropped_peer_is_disconnected() {
        let (at_a, at_b) = ChannelLink::pair(0, 1);
        drop(at_b);
        assert!(matches!(
            at_a.send_bytes(vec![0]),
            Err(LinkError::Disconnected(_))
        ));
        assert!(matches!(
            at_a.recv_bytes(Duration::from_millis(5)),
            Err(LinkError::Disconnected(_))
        ));
    }
}
