//! Per-endpoint network configuration: LAN simulation and liveness.
//!
//! The paper evaluates Pivot on a real 1 Gbps LAN; the in-process backend
//! is orders of magnitude faster than that, so benchmarks that care about
//! wall-clock *shape* (Figure 5's Pivot-vs-SPDZ-DT comparison hinges on
//! communication being expensive) attach a [`NetConfig`] to every
//! endpoint. The config travels with the endpoint — two networks in the
//! same process can simulate different links, which is what lets a single
//! `pivot bench` invocation sweep `[network]` settings.

use std::time::Duration;

/// Per-endpoint network settings.
///
/// `latency`/`bandwidth_mbps` shape the simulated LAN (the sender sleeps
/// for the per-message latency plus the serialization delay of the payload
/// at the configured bandwidth). `recv_timeout` bounds every blocking
/// receive before the endpoint declares the protocol wedged.
#[derive(Clone, Debug, PartialEq)]
pub struct NetConfig {
    /// Per-message one-way latency added at the sender.
    pub latency: Duration,
    /// Link bandwidth in Mbit/s; `0.0` (or any non-finite / non-positive
    /// value) means unlimited.
    pub bandwidth_mbps: f64,
    /// How long a blocking receive waits before raising a typed wedge
    /// error naming the pending peer.
    pub recv_timeout: Duration,
    /// Total dial budget: how long rendezvous keeps retrying an
    /// unreachable peer, and how long a broken session's redial backoff
    /// keeps trying before the link is declared dead.
    pub connect_timeout: Duration,
    /// Per-link liveness heartbeat period (`[network] heartbeat_s`).
    /// `None` disables heartbeats entirely — no extra control frames, no
    /// staleness checks — which keeps the transcript byte-identical to
    /// configurations that predate the knob.
    pub heartbeat: Option<Duration>,
    /// How long a broken session waits for the peer to come back —
    /// covering a full process restart, not just a socket redial —
    /// before the link is declared dead with a typed `PeerLost`
    /// (`[network] rejoin_deadline_s`). `None` keeps the pre-checkpoint
    /// behaviour: broken sessions ride `connect_timeout` and die with a
    /// plain disconnect.
    pub rejoin_deadline: Option<Duration>,
    /// Deterministic seed for transport-internal jitter (dial/redial
    /// backoff schedules). Scenario runs set this from the scenario seed
    /// so chaos-run retry schedules are reproducible across hosts; `0`
    /// keeps the legacy fixed-constant seeding.
    pub seed: u64,
    /// Durable-session mode: retransmit rings keep frames past their ack
    /// up to the peer's announced checkpoint cursor (barrier-aligned
    /// retention), so a peer restarting from its last durable checkpoint
    /// can be replayed forward. Set when the scenario has a
    /// `[checkpoint]` section; off by default.
    pub durable_sessions: bool,
}

/// Default wedge timeout (the old hard-coded `RECV_TIMEOUT`).
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(120);

/// Default dial budget (the old hard-coded `RENDEZVOUS_TIMEOUT`).
pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(60);

/// Largest accepted wedge timeout, in seconds (~31 years). Anything
/// bigger is a configuration mistake, and values beyond ~5.8e19 would
/// panic inside `Duration::from_secs_f64`.
pub const MAX_RECV_TIMEOUT_SECS: f64 = 1e9;

impl Default for NetConfig {
    /// No simulation, 120 s wedge timeout.
    fn default() -> Self {
        NetConfig {
            latency: Duration::ZERO,
            bandwidth_mbps: 0.0,
            recv_timeout: DEFAULT_RECV_TIMEOUT,
            connect_timeout: DEFAULT_CONNECT_TIMEOUT,
            heartbeat: None,
            rejoin_deadline: None,
            seed: 0,
            durable_sessions: false,
        }
    }
}

impl NetConfig {
    /// Deprecated fallback: read the legacy environment knobs
    /// (`PIVOT_NET_LATENCY_US`, `PIVOT_NET_BANDWIDTH_MBPS`,
    /// `PIVOT_NET_RECV_TIMEOUT_S`). Unlike the old `OnceLock`, the
    /// variables are re-read on every call, so they are no longer latched
    /// for the process lifetime — but prefer passing a `NetConfig`
    /// explicitly (scenario `[network]` section / constructor argument).
    pub fn from_env() -> NetConfig {
        let mut cfg = NetConfig::default();
        if let Some(us) = read_env::<u64>("PIVOT_NET_LATENCY_US") {
            cfg.latency = Duration::from_micros(us);
        }
        if let Some(mbps) = read_env::<f64>("PIVOT_NET_BANDWIDTH_MBPS") {
            cfg.bandwidth_mbps = mbps;
        }
        if let Some(secs) = read_env::<f64>("PIVOT_NET_RECV_TIMEOUT_S") {
            if secs.is_finite() && secs > 0.0 {
                cfg.recv_timeout = Duration::from_secs_f64(secs.min(MAX_RECV_TIMEOUT_SECS));
            }
        }
        if let Some(secs) = read_env::<f64>("PIVOT_NET_CONNECT_TIMEOUT_S") {
            if secs.is_finite() && secs > 0.0 {
                cfg.connect_timeout = Duration::from_secs_f64(secs.min(MAX_RECV_TIMEOUT_SECS));
            }
        }
        cfg
    }

    /// Simulated wire seconds per payload byte (`0.0` when unlimited).
    pub fn secs_per_byte(&self) -> f64 {
        if self.bandwidth_mbps.is_finite() && self.bandwidth_mbps > 0.0 {
            8.0 / (self.bandwidth_mbps * 1e6)
        } else {
            0.0
        }
    }

    /// Whether any LAN simulation is active.
    pub fn simulates(&self) -> bool {
        !self.latency.is_zero() || self.secs_per_byte() > 0.0
    }

    /// Charge the sender for one `bytes`-byte message under the simulated
    /// LAN (no-op when simulation is off).
    pub(crate) fn charge_send(&self, bytes: usize) {
        if !self.simulates() {
            return;
        }
        let wire_time = Duration::from_secs_f64(bytes as f64 * self.secs_per_byte());
        std::thread::sleep(self.latency + wire_time);
    }
}

fn read_env<T: std::str::FromStr>(key: &str) -> Option<T> {
    std::env::var(key).ok().and_then(|v| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_no_simulation() {
        let cfg = NetConfig::default();
        assert!(!cfg.simulates());
        assert_eq!(cfg.secs_per_byte(), 0.0);
        assert_eq!(cfg.recv_timeout, DEFAULT_RECV_TIMEOUT);
        assert_eq!(cfg.connect_timeout, DEFAULT_CONNECT_TIMEOUT);
    }

    #[test]
    fn bandwidth_translates_to_secs_per_byte() {
        let cfg = NetConfig {
            bandwidth_mbps: 8.0, // 1 MB/s
            ..NetConfig::default()
        };
        assert!((cfg.secs_per_byte() - 1e-6).abs() < 1e-12);
        assert!(cfg.simulates());
    }

    #[test]
    fn nonpositive_bandwidth_is_unlimited() {
        for mbps in [0.0, -5.0, f64::INFINITY, f64::NAN] {
            let cfg = NetConfig {
                bandwidth_mbps: mbps,
                ..NetConfig::default()
            };
            assert_eq!(cfg.secs_per_byte(), 0.0, "{mbps}");
        }
    }
}
