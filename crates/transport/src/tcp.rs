//! TCP backend: one socket per peer, length-prefixed frames, and a
//! party-id rendezvous so `m` independent processes assemble the same
//! fully connected mesh the in-process backend builds from channels.
//!
//! Topology: every party listens on its own address (entry `id` of the
//! shared peer list), *connects* to every lower-id peer, and *accepts*
//! from every higher-id peer. A 12-byte handshake (`b"PVT1"` + the
//! sender's party id) travels in each direction so both sides verify who
//! is on the line before protocol bytes flow.
//!
//! Frames are `u64` little-endian payload length + payload — the same
//! bytes [`crate::Wire`] produces, so [`crate::NetStats`] byte counts are
//! identical across backends (framing overhead is transport-internal and
//! deliberately not accounted).
//!
//! Sends are queued to a per-link writer thread: the SPMD collectives
//! assume sends never block on the peer making progress (true for
//! unbounded channels), and a naive blocking `write_all` on a full socket
//! buffer could deadlock two parties sending large frames to each other.

use crate::config::NetConfig;
use crate::endpoint::Endpoint;
use crate::link::{Link, LinkError};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Handshake preamble: protocol magic + version.
const MAGIC: &[u8; 4] = b"PVT1";
/// How long rendezvous waits for the full mesh before giving up.
const RENDEZVOUS_TIMEOUT: Duration = Duration::from_secs(60);
/// Retry interval while a peer's listener is not up yet.
const CONNECT_RETRY: Duration = Duration::from_millis(25);
/// Upper bound on a single frame; a length above this is a desynced or
/// hostile stream, not a real message.
const MAX_FRAME_BYTES: u64 = 1 << 32;
/// Cap on the handshake read for *inbound* connections: a real peer's
/// hello is already buffered by the time we accept, so only a stray
/// silent client ever waits this long.
const INBOUND_HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);
/// Cap on how long one blocked socket write may stall the writer thread.
/// In a healthy run peers drain their sockets continuously, so a write
/// that makes no progress for this long means the peer is wedged or gone
/// — the writer gives up, which also bounds how long `Drop` (which joins
/// the writer to flush a fast-exiting process's final frames) can wait.
const WRITE_STALL_TIMEOUT: Duration = Duration::from_secs(30);

/// A framed TCP connection to one peer.
pub struct TcpLink {
    peer: usize,
    /// Queue into the writer thread (`None` only during drop).
    tx: Option<Sender<Vec<u8>>>,
    writer: Option<std::thread::JoinHandle<()>>,
    reader: Mutex<ReadHalf>,
}

/// Read side of the socket plus the last-applied read timeout, so the hot
/// receive path only pays the `setsockopt` when the deadline changes.
struct ReadHalf {
    stream: TcpStream,
    timeout: Option<Duration>,
}

impl TcpLink {
    /// Wrap an established, handshaken stream.
    pub fn new(peer: usize, stream: TcpStream) -> io::Result<TcpLink> {
        stream.set_nodelay(true)?;
        let write_half = stream.try_clone()?;
        write_half.set_write_timeout(Some(WRITE_STALL_TIMEOUT))?;
        let (tx, rx): (Sender<Vec<u8>>, Receiver<Vec<u8>>) = unbounded();
        let writer = std::thread::Builder::new()
            .name(format!("pivot-tcp-writer-{peer}"))
            .spawn(move || write_loop(write_half, rx))
            .expect("spawn TCP writer thread");
        Ok(TcpLink {
            peer,
            tx: Some(tx),
            writer: Some(writer),
            reader: Mutex::new(ReadHalf {
                stream,
                timeout: None,
            }),
        })
    }
}

/// Drain the send queue onto the socket until the link is dropped or the
/// connection breaks (errors surface at the peer as a recv timeout with a
/// wedge diagnostic, so this loop just exits).
fn write_loop(mut stream: TcpStream, rx: Receiver<Vec<u8>>) {
    while let Ok(frame) = rx.recv() {
        if stream
            .write_all(&(frame.len() as u64).to_le_bytes())
            .is_err()
            || stream.write_all(&frame).is_err()
        {
            return;
        }
    }
    // Queue closed: flush and let the socket shut down with the process.
    let _ = stream.flush();
}

impl Link for TcpLink {
    fn peer(&self) -> usize {
        self.peer
    }

    fn send_bytes(&self, bytes: Vec<u8>) -> Result<(), LinkError> {
        self.tx
            .as_ref()
            .expect("send after drop")
            .send(bytes)
            .map_err(|_| LinkError::Disconnected("writer thread exited".into()))
    }

    fn recv_bytes(&self, timeout: Duration) -> Result<Vec<u8>, LinkError> {
        let mut half = self.reader.lock().expect("reader poisoned");
        // Zero would mean "no timeout" to the OS; clamp to something tiny.
        let effective = timeout.max(Duration::from_millis(1));
        if half.timeout != Some(effective) {
            half.stream
                .set_read_timeout(Some(effective))
                .map_err(|e| LinkError::Disconnected(format!("set_read_timeout: {e}")))?;
            half.timeout = Some(effective);
        }
        let map_err = |e: io::Error| match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => LinkError::Timeout(timeout),
            io::ErrorKind::UnexpectedEof => LinkError::Disconnected("connection closed".into()),
            _ => LinkError::Disconnected(e.to_string()),
        };
        let mut len_buf = [0u8; 8];
        half.stream.read_exact(&mut len_buf).map_err(map_err)?;
        let len = u64::from_le_bytes(len_buf);
        if len > MAX_FRAME_BYTES {
            return Err(LinkError::Disconnected(format!(
                "implausible frame length {len} (desynced stream?)"
            )));
        }
        let mut payload = vec![0u8; len as usize];
        half.stream.read_exact(&mut payload).map_err(map_err)?;
        Ok(payload)
    }
}

impl Drop for TcpLink {
    fn drop(&mut self) {
        // Close the queue, then wait for the writer to flush what was
        // already queued — otherwise a fast-exiting process could tear the
        // socket down under its final protocol messages.
        drop(self.tx.take());
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
    }
}

/// Rendezvous with every peer and build this party's [`Endpoint`].
///
/// `peers` is the full address list in party-id order (shared verbatim by
/// all `m` processes); `listen` is the local bind address, normally
/// `peers[id]` but separable for NAT-style setups where the reachable
/// address differs from the bindable one.
pub fn connect_mesh(
    id: usize,
    listen: &str,
    peers: &[String],
    net: NetConfig,
) -> Result<Endpoint, String> {
    let m = peers.len();
    assert!(id < m, "party id {id} out of range for {m} peers");
    let mut links: Vec<Option<Box<dyn Link>>> = (0..m).map(|_| None).collect();
    let deadline = Instant::now() + RENDEZVOUS_TIMEOUT;

    // Bind before dialing anyone, so peers that are ahead of us in the
    // rendezvous can already reach our listener.
    let listener =
        TcpListener::bind(listen).map_err(|e| format!("party {id}: cannot bind {listen}: {e}"))?;

    // Dial every lower-id peer (their listeners may not be up yet; retry).
    for (peer, addr) in peers.iter().enumerate().take(id) {
        let stream = connect_with_retry(addr, deadline)
            .map_err(|e| format!("party {id}: cannot reach party {peer} at {addr}: {e}"))?;
        // Dialer speaks first, then waits for the acceptor's reply — which
        // may take most of the rendezvous window if the acceptor parked
        // this connection in its backlog while dialing its own lower-id
        // peers, so the read is bounded only by the shared deadline. An
        // acceptor that rejects us (duplicate id, bad magic) closes the
        // socket instead of replying, surfacing here as a clean error.
        send_hello(&stream, id)
            .and_then(|()| read_hello(&stream, deadline, Duration::MAX))
            .and_then(|claimed| {
                if claimed == peer {
                    Ok(())
                } else {
                    Err(io::Error::other(format!(
                        "address {addr} answered as party {claimed}, expected {peer}"
                    )))
                }
            })
            .map_err(|e| format!("party {id}: handshake with party {peer} failed: {e}"))?;
        links[peer] = Some(Box::new(
            TcpLink::new(peer, stream).map_err(|e| format!("party {id}: link setup: {e}"))?,
        ));
    }

    // Accept every higher-id peer (in whatever order they dial in). A
    // connection that fails the handshake or claims a bad id is a stray
    // client (port scanner, health check, misconfigured duplicate), not a
    // reason to abort the run: drop it *without replying* — so the rejected
    // dialer fails fast on a closed socket instead of believing rendezvous
    // succeeded — and keep listening until the deadline.
    let mut pending = m - (id + 1);
    while pending > 0 {
        let stream = accept_with_deadline(&listener, deadline)
            .map_err(|e| format!("party {id}: waiting for higher-id peers: {e}"))?;
        // A real peer wrote its hello right after connecting (possibly
        // long ago, while parked in our backlog), so the bytes are
        // already buffered: cap the wait so a silent stray connection
        // cannot eat the whole rendezvous window.
        let peer = match read_hello(&stream, deadline, INBOUND_HANDSHAKE_TIMEOUT) {
            Ok(peer) => peer,
            Err(e) => {
                eprintln!("party {id}: dropping stray inbound connection ({e})");
                continue;
            }
        };
        if peer <= id || peer >= m || links[peer].is_some() {
            eprintln!(
                "party {id}: dropping inbound connection claiming party id {peer} \
                 (invalid or duplicate)"
            );
            continue;
        }
        // Validated: complete the handshake so the dialer proceeds.
        if let Err(e) = send_hello(&stream, id) {
            eprintln!("party {id}: inbound connection from party {peer} broke ({e})");
            continue;
        }
        links[peer] = Some(Box::new(
            TcpLink::new(peer, stream).map_err(|e| format!("party {id}: link setup: {e}"))?,
        ));
        pending -= 1;
    }

    Ok(Endpoint::from_links(id, links, net))
}

/// Write this party's 12-byte hello (magic + id).
fn send_hello(mut stream: &TcpStream, own_id: usize) -> io::Result<()> {
    let mut hello = Vec::with_capacity(12);
    hello.extend_from_slice(MAGIC);
    hello.extend_from_slice(&(own_id as u64).to_le_bytes());
    stream.write_all(&hello)
}

/// Read and validate the peer's hello; returns its claimed party id. The
/// read wait is bounded by the shared rendezvous deadline, further capped
/// by `max_wait`.
fn read_hello(mut stream: &TcpStream, deadline: Instant, max_wait: Duration) -> io::Result<usize> {
    let remaining = deadline
        .saturating_duration_since(Instant::now())
        .min(max_wait)
        .max(Duration::from_millis(1));
    stream.set_read_timeout(Some(remaining))?;
    let mut hello = [0u8; 12];
    stream.read_exact(&mut hello)?;
    if &hello[..4] != MAGIC {
        return Err(io::Error::other("bad handshake magic"));
    }
    let peer = u64::from_le_bytes(hello[4..].try_into().expect("4..12 is 8 bytes"));
    usize::try_from(peer).map_err(|_| io::Error::other("peer id overflows usize"))
}

fn connect_with_retry(addr: &str, deadline: Instant) -> io::Result<TcpStream> {
    use std::net::ToSocketAddrs;
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining < CONNECT_RETRY {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("gave up after {RENDEZVOUS_TIMEOUT:?}"),
            ));
        }
        // Resolve and dial with the remaining budget as the attempt
        // timeout: a blackholed address (firewall DROP) must not let the
        // kernel's SYN retransmits overrun the rendezvous deadline. Try
        // every resolved address (dual-stack hostnames may list an
        // unreachable family first), like `TcpStream::connect` does.
        let attempt = addr.to_socket_addrs().and_then(|addrs| {
            let mut last = io::Error::other(format!("{addr} resolves to no address"));
            for resolved in addrs {
                // Re-derive the budget per address so several blackholed
                // addresses cannot jointly overrun the deadline.
                let budget = deadline
                    .saturating_duration_since(Instant::now())
                    .max(Duration::from_millis(1));
                match TcpStream::connect_timeout(&resolved, budget) {
                    Ok(stream) => return Ok(stream),
                    Err(e) => last = e,
                }
            }
            Err(last)
        });
        match attempt {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if Instant::now() + CONNECT_RETRY >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("gave up after {RENDEZVOUS_TIMEOUT:?}: {e}"),
                    ));
                }
                std::thread::sleep(CONNECT_RETRY);
            }
        }
    }
}

fn accept_with_deadline(listener: &TcpListener, deadline: Instant) -> io::Result<TcpStream> {
    listener.set_nonblocking(true)?;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                return Ok(stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("no connection within {RENDEZVOUS_TIMEOUT:?}"),
                    ));
                }
                std::thread::sleep(CONNECT_RETRY);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Reserve `m` distinct loopback addresses by binding OS-chosen ports and
/// immediately releasing them for the mesh to re-bind. The tiny window in
/// which another process could grab a released port is acceptable for the
/// tests and smoke runs this serves; production deployments pass fixed
/// addresses.
pub fn loopback_peers(m: usize) -> Vec<String> {
    // Hold all probes simultaneously before releasing any, so the kernel
    // cannot hand a just-released port to a later probe.
    let probes: Vec<TcpListener> = (0..m)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind probe"))
        .collect();
    probes
        .iter()
        .map(|p| format!("127.0.0.1:{}", p.local_addr().expect("probe addr").port()))
        .collect()
}

/// Test/bench helper: spawn `m` OS threads, each building its mesh
/// endpoint over loopback TCP, and run the SPMD closure — the socket
/// analogue of [`crate::run_parties`]. Ports are chosen by the OS.
pub fn run_parties_tcp<T, F>(m: usize, net: NetConfig, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Endpoint) -> T + Send + Sync,
{
    let peers = loopback_peers(m);
    crate::endpoint::join_parties(m, |id| {
        let ep = connect_mesh(id, &peers[id], &peers, net.clone()).expect("mesh rendezvous");
        f(ep)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Coalesced envelopes are ordinary payloads to the TCP framing: the
    /// sockets carry whatever bytes the endpoint hands them, so flipping
    /// the endpoint-level knob must be invisible to the mesh.
    #[test]
    fn tcp_mesh_carries_coalesced_envelopes() {
        let results = run_parties_tcp(3, NetConfig::default(), |ep| {
            ep.set_coalescing(true);
            let ids = ep.exchange_all(&(ep.id() as u64));
            let gathered = ep.gather(0, &vec![ep.id() as u64; 3]);
            let total = gathered.map(|rows| rows.iter().flatten().sum::<u64>());
            ep.scatter(0, total.map(|t| vec![t; 3]).as_deref());
            ids
        });
        for ids in results {
            assert_eq!(ids, vec![0, 1, 2]);
        }
    }
}
