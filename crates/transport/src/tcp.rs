//! TCP backend: one process per party, one session per peer.
//!
//! This mirrors the paper's deployment (each Pivot client is a separate
//! machine on a LAN) while staying protocol-compatible with the
//! in-process backend: the bytes that cross a socket here are exactly the
//! envelope frames the endpoint stages, so `NetStats` agree bit-for-bit
//! across backends — including across a mid-run reconnect, because
//! replayed frames are transport-internal retransmissions, not new
//! protocol traffic.
//!
//! # Session layer (`PVT2`)
//!
//! Each link is a *session*, not a socket. Frames carry a per-direction
//! monotonic sequence number and are held in a bounded retransmit ring
//! until the peer acknowledges delivery. When a socket breaks mid-run the
//! session survives:
//!
//! - the **lower-id** party redials the peer's rendezvous address with
//!   jittered exponential backoff (bounded by `connect_timeout`);
//! - the **higher-id** party keeps its rendezvous listener alive in a
//!   background acceptor thread and waits for the resume;
//! - the resume handshake exchanges each side's last-delivered sequence
//!   number, and both sides replay any unacknowledged frames from their
//!   ring — the receiver dedups by sequence number, so the delivered
//!   transcript is bit-identical to the fault-free run.
//!
//! If a peer never comes back, the blocked party surfaces a typed
//! [`LinkError::Disconnected`] (never a panic) once the redial budget or
//! the resume-wait deadline expires.
//!
//! # Crash recovery (restart splice)
//!
//! A session also survives a full process restart of the peer. The
//! restarted process dials *every* peer (its own listen port may still be
//! pinned by the dead incarnation's sockets) with a `HELLO_RESTART`
//! presenting the durable delivery cursor from its checkpoint. The live
//! side rolls its retransmit ring back to that barrier and replays
//! forward; the restarted side re-executes the protocol from scratch and
//! re-sends its whole outbound stream from seq 1, which the live side
//! silently dedups by sequence number. Durable-session mode
//! ([`NetConfig::durable_sessions`]) keeps rings retained past their acks
//! up to the peer's last-but-one announced checkpoint (`TAG_CKPT`), so
//! the rollback never hits an evicted frame; if it does anyway, the
//! session dies loudly with a typed [`LinkError::ResumeGap`]. An optional
//! per-link heartbeat ([`NetConfig::heartbeat`]) detects silent peers,
//! and [`NetConfig::rejoin_deadline`] bounds how long survivors park at
//! the barrier before raising [`LinkError::PeerLost`].

use crate::config::NetConfig;
use crate::endpoint::{join_parties, Endpoint};
use crate::fault::FaultInjector;
use crate::link::{Link, LinkError};
use crate::stats::NetStats;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::VecDeque;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use pivot_runtime::idle::IdleGate;

/// Session protocol magic: "PVT2" (v1 was the pre-reconnect framing).
const MAGIC: [u8; 4] = *b"PVT2";
/// Hello frame: magic(4) + party_id u64 + kind u8 + last_delivered u64.
const HELLO_LEN: usize = 21;
const HELLO_INITIAL: u8 = 0;
const HELLO_RESUME: u8 = 1;
/// Process-restart splice: the dialer presents its checkpoint's durable
/// delivery cursor; the live peer rolls its ring back to that barrier
/// and replays forward, while the dialer's own stream restarts at seq 1
/// (the peer dedups by sequence number).
const HELLO_RESTART: u8 = 2;
/// Stream frame tags.
const TAG_DATA: u8 = 0;
const TAG_ACK: u8 = 1;
/// Checkpoint announcement: out-of-band like an ack, carrying the
/// sender's durable delivery cursor for this link. Drives barrier-aligned
/// ring retention on the receiver (durable-session mode only).
const TAG_CKPT: u8 = 2;
/// Liveness heartbeat; carries no state, just resets the staleness clock.
const TAG_HEARTBEAT: u8 = 3;
/// Data frame header: tag(1) + seq u64 + len u64.
const DATA_HEADER: usize = 17;
/// Control frame (ack / checkpoint / heartbeat): tag(1) + value u64.
const ACK_FRAME: usize = 9;
/// A peer silent for this many heartbeat periods is treated as broken.
const HEARTBEAT_STALE_FACTOR: u32 = 3;
/// Largest plausible single frame; anything bigger is a desynced or
/// hostile stream and surfaces as [`LinkError::Malformed`].
const MAX_FRAME_BYTES: u64 = 1 << 32;
/// How long an inbound (resume) handshake may take before the acceptor
/// gives up on that socket.
const INBOUND_HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);
/// Writer-side stall guard: a socket write that blocks this long is
/// treated as broken (the session then rides the reconnect path).
const WRITE_STALL_TIMEOUT: Duration = Duration::from_secs(30);
/// Reader poll quantum: how often the reader re-checks session state
/// (closing / broken / epoch bump) while waiting for bytes.
const READER_POLL: Duration = Duration::from_millis(100);
/// Acceptor poll quantum for the nonblocking rendezvous listener.
const ACCEPT_POLL: Duration = Duration::from_millis(25);
/// Redial backoff: first delay, doubling per attempt up to the max,
/// each jittered to `[0.5d, 1.5d)`.
const BACKOFF_BASE: Duration = Duration::from_millis(25);
const BACKOFF_MAX: Duration = Duration::from_secs(1);
/// Per-attempt cap on a single blocking `connect` during redial, so one
/// black-holed SYN cannot eat the whole budget.
const DIAL_ATTEMPT_CAP: Duration = Duration::from_secs(2);
/// Send a cumulative ACK after this many delivered data frames.
const ACK_EVERY: u64 = 64;
/// Retransmit ring bounds: oldest unacked frames are evicted first once
/// either cap is exceeded (a later resume that still needs an evicted
/// frame fails loudly with a "replay gap" error).
const RING_MAX_FRAMES: usize = 8192;
const RING_MAX_BYTES: usize = 64 << 20;

/// Minimal deterministic PRNG for backoff jitter; the transport crate
/// deliberately has no RNG dependency and the jitter only needs to
/// decorrelate concurrent redials, not be uniform.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Jitter `d` to a uniform-ish `[0.5d, 1.5d)`.
fn jittered(rng: &mut XorShift, d: Duration) -> Duration {
    let nanos = d.as_nanos() as u64;
    if nanos == 0 {
        return d;
    }
    Duration::from_nanos(nanos / 2 + rng.next() % nanos)
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

struct Hello {
    peer: u64,
    kind: u8,
    delivered: u64,
}

fn send_hello(stream: &mut TcpStream, id: usize, kind: u8, delivered: u64) -> io::Result<()> {
    let mut buf = [0u8; HELLO_LEN];
    buf[..4].copy_from_slice(&MAGIC);
    buf[4..12].copy_from_slice(&(id as u64).to_le_bytes());
    buf[12] = kind;
    buf[13..21].copy_from_slice(&delivered.to_le_bytes());
    stream.write_all(&buf)
}

fn read_hello(stream: &mut TcpStream, max_wait: Duration) -> io::Result<Hello> {
    stream.set_read_timeout(Some(max_wait))?;
    let mut buf = [0u8; HELLO_LEN];
    stream.read_exact(&mut buf)?;
    stream.set_read_timeout(None)?;
    if buf[..4] != MAGIC {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            "bad magic in hello (not a pivot PVT2 peer)",
        ));
    }
    let kind = buf[12];
    if kind != HELLO_INITIAL && kind != HELLO_RESUME && kind != HELLO_RESTART {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            format!("unknown hello kind {kind}"),
        ));
    }
    Ok(Hello {
        peer: u64::from_le_bytes(buf[4..12].try_into().unwrap()),
        kind,
        delivered: u64::from_le_bytes(buf[13..21].try_into().unwrap()),
    })
}

// ---------------------------------------------------------------------------
// Session state
// ---------------------------------------------------------------------------

struct SessionState {
    /// Current healthy socket, if any.
    stream: Option<TcpStream>,
    /// Bumped on every successful (re)connect; lets the writer detect a
    /// stale cached stream and lets `mark_broken` ignore stale failures.
    epoch: u64,
    /// True while the socket is known-broken and a resume is pending.
    broken: bool,
    broken_since: Option<Instant>,
    /// Set by `Drop`: threads must exit instead of reconnecting.
    closing: bool,
    /// Terminal failure; once set the session never recovers.
    dead: Option<LinkError>,
    /// Next outbound sequence number (first frame is 1).
    next_seq: u64,
    /// Highest inbound sequence delivered to the endpoint.
    delivered: u64,
    /// Last `delivered` value we acked to the peer.
    acked_out: u64,
    /// Highest outbound sequence the peer has acked (ring is pruned to it).
    peer_acked: u64,
    /// Unacked outbound frames, for replay on resume.
    ring: VecDeque<(u64, Arc<Vec<u8>>)>,
    ring_bytes: usize,
    /// Barrier-aligned retention floor (durable-session mode): frames
    /// with `seq <= retain_floor` may be pruned, everything above must
    /// stay ringed for a possible peer restart. Lags one checkpoint
    /// behind `pending_floor` because the peer keeps its last *two*
    /// checkpoints and may fall back to the older one.
    retain_floor: u64,
    /// The peer's most recent `TAG_CKPT` cursor; promoted to
    /// `retain_floor` when the next announcement arrives.
    pending_floor: u64,
    /// Last time any bytes arrived from the peer (heartbeat staleness).
    last_heard: Instant,
}

struct SessionShared {
    local: usize,
    peer: usize,
    /// `Some(addr)`: this side redials on breakage (lower party id).
    /// `None`: this side waits for the peer to redial (higher party id).
    redial_addr: Option<String>,
    net: NetConfig,
    state: Mutex<SessionState>,
    cond: Condvar,
    /// Serializes all socket writes (writer data frames, reader acks,
    /// resume replay). Lock order where both are held: `write_lock`
    /// before `state` (only `finish_resume` takes both).
    write_lock: Mutex<()>,
    /// Interruptible sleep for redial backoff, so `Drop` never waits out
    /// a pending backoff.
    gate: IdleGate,
    stats: OnceLock<Arc<NetStats>>,
    injector: Option<Arc<FaultInjector>>,
}

impl SessionShared {
    fn with_stats(&self, f: impl FnOnce(&NetStats)) {
        if let Some(stats) = self.stats.get() {
            f(stats);
        }
    }

    fn dead_reason(&self) -> Option<LinkError> {
        self.state.lock().unwrap().dead.clone()
    }

    fn set_dead(&self, err: LinkError) {
        let mut st = self.state.lock().unwrap();
        if st.dead.is_none() {
            st.dead = Some(err);
        }
        if let Some(s) = st.stream.take() {
            let _ = s.shutdown(Shutdown::Both);
        }
        self.cond.notify_all();
    }
}

/// Mark the current socket broken (if `epoch_seen` is still current) and
/// wake anyone waiting on session state. Stale failures from an already
/// replaced socket are ignored.
fn mark_broken(shared: &SessionShared, epoch_seen: u64) {
    let mut st = shared.state.lock().unwrap();
    if st.closing || st.dead.is_some() || st.epoch != epoch_seen || st.broken {
        return;
    }
    st.broken = true;
    st.broken_since = Some(Instant::now());
    if let Some(s) = st.stream.take() {
        let _ = s.shutdown(Shutdown::Both);
    }
    shared.cond.notify_all();
}

fn write_data_frame(stream: &mut TcpStream, seq: u64, payload: &[u8]) -> io::Result<()> {
    let mut header = [0u8; DATA_HEADER];
    header[0] = TAG_DATA;
    header[1..9].copy_from_slice(&seq.to_le_bytes());
    header[9..17].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    stream.write_all(&header)?;
    stream.write_all(payload)
}

/// Write one 9-byte control frame (ack / checkpoint / heartbeat).
fn write_ctrl_frame(stream: &mut TcpStream, tag: u8, value: u64) -> io::Result<()> {
    let mut buf = [0u8; ACK_FRAME];
    buf[0] = tag;
    buf[1..9].copy_from_slice(&value.to_le_bytes());
    stream.write_all(&buf)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Outbound job: the payload plus a fault-injection tag. `sever == true`
/// means "ring this frame but break the socket instead of writing it" —
/// the frame is then replayed on resume, which is what guarantees
/// `replayed_frames >= 1` for an injected drop.
type OutJob = (Vec<u8>, bool);

fn writer_loop(shared: &Arc<SessionShared>, rx: Receiver<OutJob>) {
    let mut cached: Option<(u64, TcpStream)> = None;
    while let Ok((payload, sever)) = rx.recv() {
        let payload = Arc::new(payload);
        // Assign a sequence number and ring the frame under the state
        // lock; snapshot health so the write itself happens lock-free.
        let (seq, broken, epoch) = {
            let mut st = shared.state.lock().unwrap();
            // `closing` does NOT stop the writer: `Drop` sets it before
            // joining us precisely so we flush the queue's tail (a party's
            // final frames) on the way out. Only a dead session skips.
            if st.dead.is_some() {
                continue;
            }
            let seq = st.next_seq;
            st.next_seq += 1;
            st.ring_bytes += payload.len();
            st.ring.push_back((seq, Arc::clone(&payload)));
            while st.ring.len() > 1
                && (st.ring.len() > RING_MAX_FRAMES || st.ring_bytes > RING_MAX_BYTES)
            {
                // Durable sessions: frames above the retention floor may
                // still be needed by a peer restarting from its durable
                // checkpoint — the caps go soft rather than create a
                // future resume gap.
                if shared.net.durable_sessions
                    && st
                        .ring
                        .front()
                        .is_some_and(|(seq, _)| *seq > st.retain_floor)
                {
                    break;
                }
                if let Some((_, old)) = st.ring.pop_front() {
                    st.ring_bytes -= old.len();
                }
            }
            if cached.as_ref().map(|(e, _)| *e) != Some(st.epoch) {
                cached = st
                    .stream
                    .as_ref()
                    .and_then(|s| s.try_clone().ok())
                    .map(|s| (st.epoch, s));
            }
            (seq, st.broken, st.epoch)
        };
        if sever {
            // Injected drop: the frame stays ringed and unwritten; break
            // the socket so the reconnect path replays it.
            mark_broken(shared, epoch);
            cached = None;
            continue;
        }
        if broken {
            // Socket already down; `finish_resume` will replay the ring.
            continue;
        }
        let Some((cached_epoch, stream)) = cached.as_mut() else {
            continue;
        };
        if *cached_epoch != epoch {
            continue;
        }
        let res = {
            let _w = shared.write_lock.lock().unwrap();
            write_data_frame(stream, seq, &payload)
        };
        if res.is_err() {
            mark_broken(shared, epoch);
            cached = None;
        }
    }
    // Channel closed: link is dropping; every accepted job was either
    // written or left ringed for replay, so nothing to flush here.
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Parse and act on every complete frame in `pending`, removing consumed
/// bytes. Returns `Ok(false)` when the inbound channel is gone (link
/// dropped), `Err` on a malformed stream.
fn drain_frames(
    shared: &Arc<SessionShared>,
    pending: &mut Vec<u8>,
    in_tx: &Sender<Vec<u8>>,
) -> Result<bool, LinkError> {
    let mut consumed = 0usize;
    loop {
        let buf = &pending[consumed..];
        if buf.is_empty() {
            break;
        }
        match buf[0] {
            TAG_DATA => {
                if buf.len() < DATA_HEADER {
                    break;
                }
                let seq = u64::from_le_bytes(buf[1..9].try_into().unwrap());
                let len = u64::from_le_bytes(buf[9..17].try_into().unwrap());
                if len > MAX_FRAME_BYTES {
                    return Err(LinkError::Malformed(format!(
                        "frame length {len} exceeds {MAX_FRAME_BYTES} byte cap"
                    )));
                }
                let len = len as usize;
                if buf.len() < DATA_HEADER + len {
                    break;
                }
                let payload = buf[DATA_HEADER..DATA_HEADER + len].to_vec();
                consumed += DATA_HEADER + len;
                let (deliver, ack_now) = {
                    let mut st = shared.state.lock().unwrap();
                    if seq <= st.delivered {
                        // Stale duplicate from a replaced socket or a
                        // resume replay overlap; already delivered.
                        (false, false)
                    } else if seq == st.delivered + 1 {
                        st.delivered = seq;
                        let ack = st.delivered - st.acked_out >= ACK_EVERY;
                        if ack {
                            st.acked_out = st.delivered;
                        }
                        (true, ack)
                    } else {
                        return Err(LinkError::Malformed(format!(
                            "sequence gap: got frame {seq}, expected {}",
                            st.delivered + 1
                        )));
                    }
                };
                if deliver && in_tx.send(payload).is_err() {
                    return Ok(false);
                }
                if ack_now {
                    send_ack(shared, seq);
                }
            }
            TAG_ACK => {
                if buf.len() < ACK_FRAME {
                    break;
                }
                let delivered = u64::from_le_bytes(buf[1..9].try_into().unwrap());
                consumed += ACK_FRAME;
                let mut st = shared.state.lock().unwrap();
                if delivered > st.peer_acked {
                    st.peer_acked = delivered;
                }
                let prune_to = if shared.net.durable_sessions {
                    delivered.min(st.retain_floor)
                } else {
                    delivered
                };
                while st.ring.front().is_some_and(|(seq, _)| *seq <= prune_to) {
                    if let Some((_, old)) = st.ring.pop_front() {
                        st.ring_bytes -= old.len();
                    }
                }
            }
            TAG_CKPT => {
                if buf.len() < ACK_FRAME {
                    break;
                }
                let cursor = u64::from_le_bytes(buf[1..9].try_into().unwrap());
                consumed += ACK_FRAME;
                let mut st = shared.state.lock().unwrap();
                // The peer keeps its last two checkpoints: retention must
                // cover the *previous* one, so the floor lags one
                // announcement behind the newest cursor.
                let released = st.pending_floor;
                if released > st.retain_floor {
                    st.retain_floor = released;
                }
                if cursor > st.pending_floor {
                    st.pending_floor = cursor;
                }
                let prune_to = st.peer_acked.min(st.retain_floor);
                while st.ring.front().is_some_and(|(seq, _)| *seq <= prune_to) {
                    if let Some((_, old)) = st.ring.pop_front() {
                        st.ring_bytes -= old.len();
                    }
                }
            }
            TAG_HEARTBEAT => {
                if buf.len() < ACK_FRAME {
                    break;
                }
                // Liveness only; receipt already refreshed `last_heard`.
                consumed += ACK_FRAME;
            }
            tag => {
                return Err(LinkError::Malformed(format!("unknown frame tag {tag}")));
            }
        }
    }
    pending.drain(..consumed);
    Ok(true)
}

/// Best-effort cumulative ack on the current socket; a failed ack is
/// harmless (the peer keeps the frames ringed a little longer).
fn send_ack(shared: &SessionShared, delivered: u64) {
    let stream = {
        let st = shared.state.lock().unwrap();
        if st.broken {
            return;
        }
        st.stream.as_ref().and_then(|s| s.try_clone().ok())
    };
    if let Some(mut stream) = stream {
        let _w = shared.write_lock.lock().unwrap();
        let _ = write_ctrl_frame(&mut stream, TAG_ACK, delivered);
    }
}

fn reader_loop(shared: &Arc<SessionShared>, in_tx: Sender<Vec<u8>>) {
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    'outer: loop {
        // Get a healthy stream, riding the reconnect path if needed.
        let (mut stream, epoch) = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.closing || st.dead.is_some() {
                    return;
                }
                if st.broken {
                    if shared.redial_addr.is_some() {
                        drop(st);
                        redial(shared);
                        continue 'outer;
                    }
                    // Acceptor side: wait for the peer to redial us. A
                    // configured rejoin deadline widens the budget to
                    // cover a full process restart and types the failure.
                    let budget = shared
                        .net
                        .rejoin_deadline
                        .unwrap_or(shared.net.connect_timeout);
                    let deadline = st
                        .broken_since
                        .map(|t| t + budget)
                        .unwrap_or_else(|| Instant::now() + budget);
                    if Instant::now() >= deadline {
                        drop(st);
                        let err = if shared.net.rejoin_deadline.is_some() {
                            LinkError::PeerLost {
                                peer: shared.peer,
                                waited: budget,
                            }
                        } else {
                            LinkError::Disconnected(format!(
                                "party {} did not resume within {budget:?}",
                                shared.peer
                            ))
                        };
                        shared.set_dead(err);
                        return;
                    }
                    let (next, _) = shared.cond.wait_timeout(st, READER_POLL).unwrap();
                    st = next;
                    continue;
                }
                match st.stream.as_ref().and_then(|s| s.try_clone().ok()) {
                    Some(s) => break (s, st.epoch),
                    None => {
                        let (next, _) = shared.cond.wait_timeout(st, READER_POLL).unwrap();
                        st = next;
                    }
                }
            }
        };
        if stream.set_read_timeout(Some(READER_POLL)).is_err() {
            mark_broken(shared, epoch);
            continue;
        }
        // A fresh socket means any partial frame from the old one is
        // stale; unacked frames are replayed whole on resume.
        pending.clear();
        loop {
            {
                let st = shared.state.lock().unwrap();
                if st.closing || st.dead.is_some() {
                    return;
                }
                if st.broken || st.epoch != epoch {
                    continue 'outer;
                }
            }
            match stream.read(&mut chunk) {
                Ok(0) => {
                    mark_broken(shared, epoch);
                    continue 'outer;
                }
                Ok(n) => {
                    if shared.net.heartbeat.is_some() {
                        shared.state.lock().unwrap().last_heard = Instant::now();
                    }
                    pending.extend_from_slice(&chunk[..n]);
                    match drain_frames(shared, &mut pending, &in_tx) {
                        Ok(true) => {}
                        Ok(false) => return, // link dropped
                        Err(err) => {
                            shared.set_dead(err);
                            return;
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    mark_broken(shared, epoch);
                    continue 'outer;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Reconnect
// ---------------------------------------------------------------------------

/// Lower-id side: redial the peer's rendezvous address with jittered
/// exponential backoff until the session resumes, the budget runs out,
/// or the link is closing.
fn redial(shared: &Arc<SessionShared>) {
    let _span = pivot_trace::runtime_span("reconnect");
    let addr = shared.redial_addr.as_ref().expect("redial without addr");
    let seed = shared.net.seed
        ^ shared
            .injector
            .as_ref()
            .map(|i| i.seed())
            .unwrap_or(0x9e3779b97f4a7c15)
        ^ (((shared.local as u64) << 32) | shared.peer as u64);
    let mut rng = XorShift::new(seed);
    // A configured rejoin deadline widens the redial budget to cover a
    // full process restart of the peer (checkpoint load + re-execution
    // up to the barrier), anchored at the moment the socket broke.
    let budget = shared
        .net
        .rejoin_deadline
        .unwrap_or(shared.net.connect_timeout);
    let deadline = {
        let st = shared.state.lock().unwrap();
        st.broken_since.unwrap_or_else(Instant::now) + budget
    };
    let mut delay = BACKOFF_BASE;
    loop {
        {
            let st = shared.state.lock().unwrap();
            if st.closing || st.dead.is_some() || !st.broken {
                return;
            }
        }
        match try_resume(shared, addr, deadline) {
            Ok(()) => return,
            Err(_) => {
                shared.with_stats(|s| s.record_connect_retry());
                if Instant::now() >= deadline {
                    let err = if shared.net.rejoin_deadline.is_some() {
                        LinkError::PeerLost {
                            peer: shared.peer,
                            waited: budget,
                        }
                    } else {
                        LinkError::Disconnected(format!(
                            "could not resume session with party {} within {budget:?}",
                            shared.peer
                        ))
                    };
                    shared.set_dead(err);
                    return;
                }
                // Interruptible backoff: Drop trips the gate.
                if !shared.gate.wait_for(jittered(&mut rng, delay)) {
                    return;
                }
                delay = (delay * 2).min(BACKOFF_MAX);
            }
        }
    }
}

/// One resume attempt: dial, exchange resume hellos, splice the new
/// socket into the session.
fn try_resume(shared: &Arc<SessionShared>, addr: &str, deadline: Instant) -> io::Result<()> {
    let budget = deadline
        .saturating_duration_since(Instant::now())
        .min(DIAL_ATTEMPT_CAP);
    if budget.is_zero() {
        return Err(io::Error::new(ErrorKind::TimedOut, "redial budget spent"));
    }
    let mut last: Option<io::Error> = None;
    let mut stream: Option<TcpStream> = None;
    for sock_addr in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&sock_addr, budget) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(e) => last = Some(e),
        }
    }
    let mut stream = stream.ok_or_else(|| {
        last.unwrap_or_else(|| io::Error::new(ErrorKind::AddrNotAvailable, "no addresses"))
    })?;
    stream.set_nodelay(true)?;
    stream.set_write_timeout(Some(WRITE_STALL_TIMEOUT))?;
    let delivered = shared.state.lock().unwrap().delivered;
    send_hello(&mut stream, shared.local, HELLO_RESUME, delivered)?;
    let hello = read_hello(&mut stream, INBOUND_HANDSHAKE_TIMEOUT)?;
    if hello.peer as usize != shared.peer || hello.kind != HELLO_RESUME {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            format!("resume answered by unexpected party {}", hello.peer),
        ));
    }
    finish_resume(shared, stream, hello.delivered)
}

/// Splice a fresh socket into the session after a plain socket resume.
fn finish_resume(
    shared: &Arc<SessionShared>,
    stream: TcpStream,
    peer_delivered: u64,
) -> io::Result<()> {
    splice_session(shared, stream, peer_delivered, false)
}

/// Splice a fresh socket into the session after the peer restarted from
/// a durable checkpoint: the ack horizon rolls *back* to the checkpoint
/// cursor and everything past it is replayed.
fn finish_restart(
    shared: &Arc<SessionShared>,
    stream: TcpStream,
    peer_delivered: u64,
) -> io::Result<()> {
    splice_session(shared, stream, peer_delivered, true)
}

/// Splice a fresh socket into the session (both sides): prune the ring
/// to what the peer can never ask for again, replay everything past the
/// peer's delivery horizon, and flip the session back to healthy.
fn splice_session(
    shared: &Arc<SessionShared>,
    mut stream: TcpStream,
    peer_delivered: u64,
    restart: bool,
) -> io::Result<()> {
    // Lock order: write_lock before state (the only place both are held)
    // so no data or ack frame interleaves with the replay.
    let _w = shared.write_lock.lock().unwrap();
    let mut st = shared.state.lock().unwrap();
    if st.closing || st.dead.is_some() {
        return Err(io::Error::other("session closed"));
    }
    if let Some(old) = st.stream.take() {
        let _ = old.shutdown(Shutdown::Both);
    }
    // In durable mode the peer may later restart from a checkpoint older
    // than its live delivery cursor, so pruning stays bounded by the
    // retention floor even when the cursor is ahead of it.
    let prune_to = if shared.net.durable_sessions {
        peer_delivered.min(st.retain_floor)
    } else {
        peer_delivered
    };
    while st.ring.front().is_some_and(|(seq, _)| *seq <= prune_to) {
        if let Some((_, old)) = st.ring.pop_front() {
            st.ring_bytes -= old.len();
        }
    }
    if restart {
        // The peer restarted from its checkpoint: roll the ack horizon
        // back so its re-sent cumulative acks grow monotonically again.
        st.peer_acked = peer_delivered;
    } else if st.peer_acked < peer_delivered {
        st.peer_acked = peer_delivered;
    }
    // The ring must cover everything past the peer's delivery horizon;
    // if eviction outran the peer the transcript is unrecoverable.
    let sent_up_to = st.next_seq - 1;
    let gap = sent_up_to > peer_delivered
        && st
            .ring
            .front()
            .is_none_or(|(seq, _)| *seq > peer_delivered + 1);
    if gap {
        let err = LinkError::ResumeGap {
            peer: shared.peer,
            missing_seq: peer_delivered + 1,
        };
        st.dead = Some(err);
        shared.cond.notify_all();
        return Err(io::Error::other("replay gap"));
    }
    let mut replayed = 0u64;
    for (seq, payload) in st.ring.iter() {
        if *seq <= peer_delivered {
            continue; // retained only for older checkpoints
        }
        write_data_frame(&mut stream, *seq, payload)?;
        replayed += 1;
    }
    st.stream = Some(stream);
    st.epoch += 1;
    st.broken = false;
    st.broken_since = None;
    st.last_heard = Instant::now();
    shared.with_stats(|s| {
        s.record_reconnect();
        if restart {
            s.record_rejoin();
        }
        if replayed > 0 {
            s.record_replayed_frames(replayed);
        }
    });
    shared.cond.notify_all();
    Ok(())
}

// ---------------------------------------------------------------------------
// Link
// ---------------------------------------------------------------------------

/// One resumable session to a peer. See the module docs for the
/// reconnect protocol.
pub struct SessionLink {
    shared: Arc<SessionShared>,
    out_tx: Option<Sender<OutJob>>,
    in_rx: Receiver<Vec<u8>>,
    writer: Option<JoinHandle<()>>,
    reader: Option<JoinHandle<()>>,
    heartbeat: Option<JoinHandle<()>>,
}

impl SessionLink {
    /// `resume_from` is the inbound delivery cursor this session starts
    /// at: `0` for a fresh rendezvous, the checkpoint's per-peer cursor
    /// when rebuilding a mesh after a process restart (the peer replays
    /// its stream from `resume_from + 1`).
    fn new(
        local: usize,
        peer: usize,
        stream: TcpStream,
        redial_addr: Option<String>,
        net: NetConfig,
        injector: Option<Arc<FaultInjector>>,
        resume_from: u64,
    ) -> io::Result<SessionLink> {
        stream.set_nodelay(true)?;
        stream.set_write_timeout(Some(WRITE_STALL_TIMEOUT))?;
        let heartbeat_period = net.heartbeat;
        let shared = Arc::new(SessionShared {
            local,
            peer,
            redial_addr,
            net,
            state: Mutex::new(SessionState {
                stream: Some(stream),
                epoch: 1,
                broken: false,
                broken_since: None,
                closing: false,
                dead: None,
                next_seq: 1,
                delivered: resume_from,
                acked_out: resume_from,
                peer_acked: 0,
                ring: VecDeque::new(),
                ring_bytes: 0,
                retain_floor: 0,
                pending_floor: 0,
                last_heard: Instant::now(),
            }),
            cond: Condvar::new(),
            write_lock: Mutex::new(()),
            gate: IdleGate::new(),
            stats: OnceLock::new(),
            injector,
        });
        let (out_tx, out_rx) = unbounded::<OutJob>();
        let (in_tx, in_rx) = unbounded::<Vec<u8>>();
        let w_shared = Arc::clone(&shared);
        let writer = thread::Builder::new()
            .name(format!("pvt-w-{local}-{peer}"))
            .spawn(move || writer_loop(&w_shared, out_rx))?;
        let r_shared = Arc::clone(&shared);
        let reader = thread::Builder::new()
            .name(format!("pvt-r-{local}-{peer}"))
            .spawn(move || reader_loop(&r_shared, in_tx))?;
        let heartbeat = match heartbeat_period {
            Some(period) if !period.is_zero() => {
                let h_shared = Arc::clone(&shared);
                Some(
                    thread::Builder::new()
                        .name(format!("pvt-hb-{local}-{peer}"))
                        .spawn(move || heartbeat_loop(&h_shared, period))?,
                )
            }
            _ => None,
        };
        Ok(SessionLink {
            shared,
            out_tx: Some(out_tx),
            in_rx,
            writer: Some(writer),
            reader: Some(reader),
            heartbeat,
        })
    }
}

/// Per-link liveness watchdog: send a heartbeat every period and treat a
/// peer silent for [`HEARTBEAT_STALE_FACTOR`] periods as broken, so the
/// session rides the reconnect/rejoin path instead of wedging until the
/// receive timeout.
fn heartbeat_loop(shared: &Arc<SessionShared>, period: Duration) {
    let stale_after = period * HEARTBEAT_STALE_FACTOR;
    while shared.gate.wait_for(period) {
        let (stream, epoch, stale) = {
            let st = shared.state.lock().unwrap();
            if st.closing || st.dead.is_some() {
                return;
            }
            if st.broken {
                continue;
            }
            (
                st.stream.as_ref().and_then(|s| s.try_clone().ok()),
                st.epoch,
                st.last_heard.elapsed() > stale_after,
            )
        };
        if stale {
            mark_broken(shared, epoch);
            continue;
        }
        let Some(mut stream) = stream else {
            continue;
        };
        let res = {
            let _w = shared.write_lock.lock().unwrap();
            write_ctrl_frame(&mut stream, TAG_HEARTBEAT, 0)
        };
        if res.is_err() {
            mark_broken(shared, epoch);
        }
    }
}

impl Link for SessionLink {
    fn peer(&self) -> usize {
        self.shared.peer
    }

    fn send_bytes(&self, bytes: Vec<u8>) -> Result<(), LinkError> {
        // Fault decisions happen here, on the protocol thread, so a
        // seeded plan fires at a deterministic point in the transcript.
        let mut sever = false;
        if let Some(inj) = &self.shared.injector {
            let fault = inj.on_send(self.shared.peer, bytes.len());
            if let Some(reason) = fault.crash {
                self.shared.with_stats(|s| s.record_fault_injected());
                crate::error::TransportError::new(
                    crate::error::TransportErrorKind::InjectedCrash,
                    self.shared.local,
                    reason,
                )
                .raise();
            }
            if let Some(delay) = fault.delay {
                self.shared.with_stats(|s| s.record_fault_injected());
                thread::sleep(delay);
            }
            if fault.drop_link {
                self.shared.with_stats(|s| s.record_fault_injected());
                sever = true;
            }
        }
        match &self.out_tx {
            Some(tx) => tx.send((bytes, sever)).map_err(|_| {
                self.shared
                    .dead_reason()
                    .unwrap_or_else(|| LinkError::Disconnected("writer thread exited".into()))
            }),
            None => Err(LinkError::Disconnected("link closed".into())),
        }
    }

    fn recv_bytes(&self, timeout: Duration) -> Result<Vec<u8>, LinkError> {
        // Poll in short chunks instead of one blocking wait: a broken
        // session with a rejoin budget must outlast `recv_timeout` while
        // the peer restarts from its checkpoint, and the wait surfaces as
        // a `waiting_for_rejoin` gauge so survivors are observable.
        let deadline = Instant::now() + timeout;
        let mut waiting_rejoin = false;
        loop {
            match self.in_rx.recv_timeout(READER_POLL.min(timeout)) {
                Ok(bytes) => {
                    if waiting_rejoin {
                        pivot_trace::runtime_gauge("waiting_for_rejoin", 0.0);
                    }
                    return Ok(bytes);
                }
                Err(RecvTimeoutError::Timeout) => {
                    if let Some(err) = self.shared.dead_reason() {
                        return Err(err);
                    }
                    let rejoin_until = {
                        let st = self.shared.state.lock().unwrap();
                        match (st.broken, st.broken_since, self.shared.net.rejoin_deadline) {
                            (true, Some(since), Some(budget)) => Some(since + budget),
                            _ => None,
                        }
                    };
                    if let Some(until) = rejoin_until {
                        if !waiting_rejoin {
                            waiting_rejoin = true;
                            pivot_trace::runtime_gauge("waiting_for_rejoin", 1.0);
                        }
                        // Park at the barrier until the rejoin budget is
                        // spent (plus a grace period for the session's
                        // own watchdog to raise the typed `PeerLost`).
                        if Instant::now() < until + 2 * READER_POLL {
                            continue;
                        }
                    }
                    if Instant::now() >= deadline {
                        return Err(LinkError::Timeout(timeout));
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(self
                        .shared
                        .dead_reason()
                        .unwrap_or_else(|| LinkError::Disconnected("session closed".into())))
                }
            }
        }
    }

    fn attach_stats(&self, stats: &Arc<NetStats>) {
        let _ = self.shared.stats.set(Arc::clone(stats));
    }

    fn checkpoint_mark(&self, delivered: u64) {
        // Best-effort out-of-band announcement, like an ack: a lost mark
        // only means the peer retains ringed frames a little longer.
        let stream = {
            let st = self.shared.state.lock().unwrap();
            if st.broken || st.dead.is_some() {
                return;
            }
            st.stream.as_ref().and_then(|s| s.try_clone().ok())
        };
        if let Some(mut stream) = stream {
            let _w = self.shared.write_lock.lock().unwrap();
            let _ = write_ctrl_frame(&mut stream, TAG_CKPT, delivered);
        }
    }
}

impl Drop for SessionLink {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.closing = true;
        }
        self.shared.gate.interrupt();
        self.shared.cond.notify_all();
        // Closing the job channel lets the writer drain and exit.
        drop(self.out_tx.take());
        if let Some(w) = self.writer.take() {
            let _ = w.join();
        }
        {
            let mut st = self.shared.state.lock().unwrap();
            if let Some(s) = st.stream.take() {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
        if let Some(r) = self.reader.take() {
            let _ = r.join();
        }
        if let Some(h) = self.heartbeat.take() {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Rendezvous
// ---------------------------------------------------------------------------

/// Dial `addr` until it answers or the deadline passes, with jittered
/// exponential backoff between attempts. Each failed attempt increments
/// `retries`. Used both for initial rendezvous (peers start in arbitrary
/// order) and for session resume.
pub fn connect_with_retry(
    addr: &str,
    deadline: Instant,
    retries: &mut u64,
    seed: u64,
) -> io::Result<TcpStream> {
    let mut rng = XorShift::new(seed);
    let mut delay = BACKOFF_BASE;
    loop {
        let budget = deadline
            .saturating_duration_since(Instant::now())
            .min(DIAL_ATTEMPT_CAP);
        if budget.is_zero() {
            return Err(io::Error::new(
                ErrorKind::TimedOut,
                format!("gave up dialing {addr} (connect budget spent)"),
            ));
        }
        let mut last: Option<io::Error> = None;
        let mut resolved = false;
        for sock_addr in addr.to_socket_addrs()? {
            resolved = true;
            match TcpStream::connect_timeout(&sock_addr, budget) {
                Ok(s) => return Ok(s),
                Err(e) => last = Some(e),
            }
        }
        *retries += 1;
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(io::Error::new(
                ErrorKind::TimedOut,
                format!(
                    "gave up dialing {addr}: {}",
                    last.map(|e| e.to_string()).unwrap_or_else(|| if resolved {
                        "connect failed".into()
                    } else {
                        "no resolvable addresses".into()
                    })
                ),
            ));
        }
        thread::sleep(jittered(&mut rng, delay).min(remaining));
        delay = (delay * 2).min(BACKOFF_MAX);
    }
}

/// Registry entry for the background acceptor: sessions it may resume.
type ResumeRegistry = Vec<(usize, Weak<SessionShared>)>;

/// Background acceptor (higher-id side of each link): keeps the
/// rendezvous listener alive and splices resume connections back into
/// their sessions. Exits once every registered session is gone.
fn acceptor_loop(listener: TcpListener, registry: ResumeRegistry) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    loop {
        if !registry.iter().any(|(_, weak)| weak.strong_count() > 0) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                handle_inbound(stream, &registry);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

fn handle_inbound(mut stream: TcpStream, registry: &ResumeRegistry) {
    let Ok(hello) = read_hello(&mut stream, INBOUND_HANDSHAKE_TIMEOUT) else {
        return;
    };
    if hello.kind != HELLO_RESUME && hello.kind != HELLO_RESTART {
        return;
    }
    let Some(shared) = registry
        .iter()
        .find(|(peer, _)| *peer == hello.peer as usize)
        .and_then(|(_, weak)| weak.upgrade())
    else {
        return;
    };
    if stream.set_nodelay(true).is_err()
        || stream.set_write_timeout(Some(WRITE_STALL_TIMEOUT)).is_err()
    {
        return;
    }
    let delivered = shared.state.lock().unwrap().delivered;
    if send_hello(&mut stream, shared.local, hello.kind, delivered).is_err() {
        return;
    }
    if hello.kind == HELLO_RESTART {
        let _ = finish_restart(&shared, stream, hello.delivered);
    } else {
        let _ = finish_resume(&shared, stream, hello.delivered);
    }
}

/// Establish the full mesh for party `id`: bind `listen`, dial every
/// lower id, accept every higher id, and return a ready [`Endpoint`].
///
/// `peers[i]` is party `i`'s address; `peers[id]` should equal `listen`
/// (it is ignored). Parties may start in any order: dialing retries with
/// backoff until `net.connect_timeout` expires.
pub fn connect_mesh(
    id: usize,
    listen: &str,
    peers: &[String],
    net: NetConfig,
) -> io::Result<Endpoint> {
    connect_mesh_with(id, listen, peers, net, None)
}

/// [`connect_mesh`] with an optional deterministic fault injector wired
/// into every link (and the endpoint, for round-boundary crash faults).
pub fn connect_mesh_with(
    id: usize,
    listen: &str,
    peers: &[String],
    net: NetConfig,
    injector: Option<Arc<FaultInjector>>,
) -> io::Result<Endpoint> {
    let m = peers.len();
    assert!(id < m, "party id {id} out of range for {m} peers");
    let deadline = Instant::now() + net.connect_timeout;
    let listener = TcpListener::bind(listen)?;
    let mut links: Vec<Option<Box<dyn Link>>> = (0..m).map(|_| None).collect();
    let mut registry: ResumeRegistry = Vec::new();
    let mut dial_retries = 0u64;
    let seed_base = net.seed
        ^ injector
            .as_ref()
            .map(|i| i.seed())
            .unwrap_or(0x5851f42d4c957f2d);

    // Dial every lower id (their listeners are up or will be shortly;
    // retry with backoff either way). We are the higher id on these
    // links, so the peer redials *us* on breakage: register the session
    // with our background acceptor.
    for peer in 0..id {
        let seed = seed_base ^ (((id as u64) << 32) | peer as u64);
        let mut stream = connect_with_retry(&peers[peer], deadline, &mut dial_retries, seed)?;
        send_hello(&mut stream, id, HELLO_INITIAL, 0)?;
        let hello = read_hello(&mut stream, INBOUND_HANDSHAKE_TIMEOUT)?;
        if hello.peer as usize != peer || hello.kind != HELLO_INITIAL {
            return Err(io::Error::new(
                ErrorKind::InvalidData,
                format!(
                    "dialed party {peer} but party {} answered the handshake",
                    hello.peer
                ),
            ));
        }
        let link = SessionLink::new(id, peer, stream, None, net.clone(), injector.clone(), 0)?;
        registry.push((peer, Arc::downgrade(&link.shared)));
        links[peer] = Some(Box::new(link));
    }

    // Accept every higher id. We are the lower id on these links, so we
    // redial the peer's rendezvous address on breakage.
    let mut pending = m - 1 - id;
    while pending > 0 {
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                ErrorKind::TimedOut,
                format!("party {id}: timed out waiting for {pending} peer(s) to connect"),
            ));
        }
        listener.set_nonblocking(true)?;
        let accepted = match listener.accept() {
            Ok((stream, _)) => Some(stream),
            Err(e) if e.kind() == ErrorKind::WouldBlock => None,
            Err(e) => return Err(e),
        };
        listener.set_nonblocking(false)?;
        let Some(mut stream) = accepted else {
            thread::sleep(ACCEPT_POLL);
            continue;
        };
        let Ok(hello) = read_hello(&mut stream, INBOUND_HANDSHAKE_TIMEOUT) else {
            continue; // not a peer; ignore the socket
        };
        let peer = hello.peer as usize;
        if hello.kind != HELLO_INITIAL || peer <= id || peer >= m || links[peer].is_some() {
            continue;
        }
        send_hello(&mut stream, id, HELLO_INITIAL, 0)?;
        let link = SessionLink::new(
            id,
            peer,
            stream,
            Some(peers[peer].clone()),
            net.clone(),
            injector.clone(),
            0,
        )?;
        // Higher-id peers never send a plain RESUME to us (we redial
        // them), but after a full process restart they dial everyone with
        // a RESTART hello — so these sessions register with the acceptor
        // too.
        registry.push((peer, Arc::downgrade(&link.shared)));
        links[peer] = Some(Box::new(link));
        pending -= 1;
    }

    // Keep the listener alive for resumes if any peer may redial us.
    if !registry.is_empty() {
        thread::Builder::new()
            .name(format!("pvt-accept-{id}"))
            .spawn(move || acceptor_loop(listener, registry))?;
    }

    let ep = Endpoint::from_links(id, links, net);
    for _ in 0..dial_retries {
        ep.stats().record_connect_retry();
    }
    if let Some(inj) = injector {
        ep.set_fault_injector(inj);
    }
    Ok(ep)
}

/// Re-establish the full mesh after a process restart (`pivot party
/// --resume`).
///
/// The restarted process holds no live sockets and its own listen port
/// may still be pinned by the dead incarnation's connections, so it
/// always plays the dialer: every peer's rendezvous address is dialed
/// with a `HELLO_RESTART` presenting `delivered[peer]` — how many frames
/// of that peer's stream this party had durably consumed at its
/// checkpoint. Live peers roll their retransmit rings back to that
/// cursor and replay forward; this side starts each session with the
/// cursor preloaded and its own outbound stream restarting at seq 1
/// (peers dedup re-sent frames by sequence number, so deterministic
/// re-execution converges on the fault-free transcript).
pub fn connect_mesh_restart(
    id: usize,
    listen: &str,
    peers: &[String],
    net: NetConfig,
    injector: Option<Arc<FaultInjector>>,
    delivered: &[u64],
) -> io::Result<Endpoint> {
    let m = peers.len();
    assert!(id < m, "party id {id} out of range for {m} peers");
    assert_eq!(delivered.len(), m, "one delivery cursor per party");
    let deadline = Instant::now() + net.connect_timeout;
    let mut links: Vec<Option<Box<dyn Link>>> = (0..m).map(|_| None).collect();
    let mut registry: ResumeRegistry = Vec::new();
    let mut dial_retries = 0u64;
    let seed_base = net.seed
        ^ injector
            .as_ref()
            .map(|i| i.seed())
            .unwrap_or(0x5851f42d4c957f2d);

    for peer in 0..m {
        if peer == id {
            continue;
        }
        let seed = seed_base ^ (((id as u64) << 32) | peer as u64);
        let mut stream = connect_with_retry(&peers[peer], deadline, &mut dial_retries, seed)?;
        send_hello(&mut stream, id, HELLO_RESTART, delivered[peer])?;
        let hello = read_hello(&mut stream, INBOUND_HANDSHAKE_TIMEOUT)?;
        if hello.peer as usize != peer || hello.kind != HELLO_RESTART {
            return Err(io::Error::new(
                ErrorKind::InvalidData,
                format!(
                    "restart dial to party {peer} was answered by party {} (kind {})",
                    hello.peer, hello.kind
                ),
            ));
        }
        // Normal redial rule resumes after the splice: the lower id
        // redials on future breaks.
        let redial_addr = (peer > id).then(|| peers[peer].clone());
        let link = SessionLink::new(
            id,
            peer,
            stream,
            redial_addr,
            net.clone(),
            injector.clone(),
            delivered[peer],
        )?;
        registry.push((peer, Arc::downgrade(&link.shared)));
        links[peer] = Some(Box::new(link));
    }

    // Best-effort listener re-bind in the background: the mesh is
    // already healed, so the listener only matters if another socket
    // breaks later with this party on the accepting side. The dead
    // incarnation's sockets can pin the port (TIME_WAIT) for a while;
    // retry quietly and give up without failing the resume.
    let listen_addr = listen.to_string();
    let rebind_registry = registry;
    let rebind_deadline = Instant::now() + net.connect_timeout;
    thread::Builder::new()
        .name(format!("pvt-rebind-{id}"))
        .spawn(move || {
            let listener = loop {
                if !rebind_registry.iter().any(|(_, w)| w.strong_count() > 0) {
                    return;
                }
                match TcpListener::bind(&listen_addr) {
                    Ok(l) => break l,
                    Err(_) if Instant::now() < rebind_deadline => thread::sleep(ACCEPT_POLL * 4),
                    Err(_) => return,
                }
            };
            acceptor_loop(listener, rebind_registry);
        })?;

    let ep = Endpoint::from_links(id, links, net);
    for _ in 0..dial_retries {
        ep.stats().record_connect_retry();
    }
    // Each dialed splice is one session re-joined across the restart;
    // survivors count the mirror image in `finish_restart`.
    for _ in 0..m - 1 {
        ep.stats().record_rejoin();
    }
    if let Some(inj) = injector {
        ep.set_fault_injector(inj);
    }
    Ok(ep)
}

/// Loopback addresses for an `m`-party mesh on freshly reserved ports
/// (concurrent meshes in one process never collide).
pub fn loopback_peers(m: usize) -> Vec<String> {
    loopback_peers_at(m, reserve_ports(m as u16))
}

/// Loopback addresses for an `m`-party mesh starting at `base_port`.
pub fn loopback_peers_at(m: usize, base_port: u16) -> Vec<String> {
    (0..m)
        .map(|i| format!("127.0.0.1:{}", base_port + i as u16))
        .collect()
}

/// Monotonic loopback port allocator so concurrent test meshes in one
/// process never collide.
static NEXT_PORT: std::sync::atomic::AtomicU16 = std::sync::atomic::AtomicU16::new(29500);

/// Reserve `n` consecutive loopback ports.
pub fn reserve_ports(n: u16) -> u16 {
    NEXT_PORT.fetch_add(n, std::sync::atomic::Ordering::Relaxed)
}

/// Run an `m`-party protocol over real TCP sockets on loopback, one OS
/// thread per party (used by tests; production runs use one process per
/// party via `pivot party`).
pub fn run_parties_tcp<T, F>(m: usize, net: NetConfig, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Endpoint) -> T + Send + Sync,
{
    let peers = loopback_peers(m);
    join_parties(m, |id| {
        let ep = connect_mesh(id, &peers[id], &peers, net.clone()).expect("connect_mesh failed");
        f(ep)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::catch_transport;
    use crate::fault::FaultPlan;

    fn ports(n: u16) -> u16 {
        reserve_ports(n)
    }

    #[test]
    fn tcp_mesh_carries_coalesced_envelopes() {
        let results = run_parties_tcp(3, NetConfig::default(), |ep| {
            // Each party sends (id * 10 + peer) to every peer and
            // receives the mirror image.
            for peer in 0..3 {
                if peer != ep.id() {
                    ep.send(peer, &((ep.id() * 10 + peer) as u64));
                }
            }
            let mut got = Vec::new();
            for peer in 0..3 {
                if peer != ep.id() {
                    got.push(ep.recv::<u64>(peer));
                }
            }
            got
        });
        assert_eq!(results[0], vec![10, 20]);
        assert_eq!(results[1], vec![1, 21]);
        assert_eq!(results[2], vec![2, 12]);
    }

    #[test]
    fn injected_drop_recovers_transparently_with_replay() {
        let base = ports(8);
        let peers = loopback_peers_at(2, base);
        let plan = FaultPlan::parse(&["drop_link 0-1 at_bytes=1".into()], 7).unwrap();
        let peers0 = peers.clone();
        let p0 = thread::spawn(move || {
            let inj = FaultInjector::new(0, 2, &plan);
            let ep = connect_mesh_with(0, &peers0[0], &peers0, NetConfig::default(), Some(inj))
                .expect("party 0 mesh");
            for i in 0..50u64 {
                ep.send(1, &i);
            }
            let sum: u64 = ep.recv(1);
            let stats = ep.stats();
            (
                sum,
                stats.faults_injected(),
                stats.reconnects(),
                stats.replayed_frames(),
            )
        });
        let p1 = thread::spawn(move || {
            let ep =
                connect_mesh(1, &peers[1], &peers, NetConfig::default()).expect("party 1 mesh");
            let mut sum = 0u64;
            for _ in 0..50 {
                sum += ep.recv::<u64>(0);
            }
            ep.send(0, &sum);
            sum
        });
        let (sum, faults, reconnects, replayed) = p0.join().unwrap();
        let echoed = p1.join().unwrap();
        assert_eq!(sum, 1225);
        assert_eq!(echoed, 1225);
        assert!(faults >= 1, "fault should be recorded (got {faults})");
        assert!(
            reconnects >= 1,
            "session should reconnect (got {reconnects})"
        );
        assert!(
            replayed >= 1,
            "severed frame should replay (got {replayed})"
        );
    }

    #[test]
    fn garbage_frames_surface_as_malformed() {
        let base = ports(2);
        let addr = format!("127.0.0.1:{base}");
        let listener = TcpListener::bind(&addr).unwrap();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let hello = read_hello(&mut stream, Duration::from_secs(5)).unwrap();
            assert_eq!(hello.kind, HELLO_INITIAL);
            send_hello(&mut stream, 1, HELLO_INITIAL, 0).unwrap();
            // Oversized length in an otherwise valid data frame header.
            let mut frame = vec![TAG_DATA];
            frame.extend_from_slice(&1u64.to_le_bytes());
            frame.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
            stream.write_all(&frame).unwrap();
            // Keep the socket open so the client parses the frame rather
            // than seeing EOF first.
            thread::sleep(Duration::from_millis(500));
        });
        let mut retries = 0;
        let mut stream = connect_with_retry(
            &addr,
            Instant::now() + Duration::from_secs(5),
            &mut retries,
            1,
        )
        .unwrap();
        send_hello(&mut stream, 0, HELLO_INITIAL, 0).unwrap();
        let hello = read_hello(&mut stream, Duration::from_secs(5)).unwrap();
        assert_eq!(hello.peer, 1);
        let link = SessionLink::new(0, 1, stream, None, NetConfig::default(), None, 0).unwrap();
        let err = link.recv_bytes(Duration::from_secs(5)).unwrap_err();
        assert!(
            matches!(err, LinkError::Malformed(_)),
            "expected Malformed, got {err:?}"
        );
        server.join().unwrap();
    }

    #[test]
    fn bad_tag_is_malformed_not_panic() {
        let base = ports(2);
        let addr = format!("127.0.0.1:{base}");
        let listener = TcpListener::bind(&addr).unwrap();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let _ = read_hello(&mut stream, Duration::from_secs(5)).unwrap();
            send_hello(&mut stream, 1, HELLO_INITIAL, 0).unwrap();
            stream.write_all(&[0xFF, 1, 2, 3]).unwrap();
            thread::sleep(Duration::from_millis(500));
        });
        let mut retries = 0;
        let mut stream = connect_with_retry(
            &addr,
            Instant::now() + Duration::from_secs(5),
            &mut retries,
            1,
        )
        .unwrap();
        send_hello(&mut stream, 0, HELLO_INITIAL, 0).unwrap();
        read_hello(&mut stream, Duration::from_secs(5)).unwrap();
        let link = SessionLink::new(0, 1, stream, None, NetConfig::default(), None, 0).unwrap();
        let err = link.recv_bytes(Duration::from_secs(5)).unwrap_err();
        assert!(matches!(err, LinkError::Malformed(_)), "{err:?}");
        server.join().unwrap();
    }

    #[test]
    fn connect_with_retry_gives_up_within_budget() {
        // Port 1 on loopback is essentially guaranteed closed; connects
        // fail fast with ECONNREFUSED, so retries accumulate.
        let start = Instant::now();
        let mut retries = 0;
        let err = connect_with_retry(
            "127.0.0.1:1",
            Instant::now() + Duration::from_millis(300),
            &mut retries,
            42,
        )
        .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::TimedOut);
        assert!(retries > 0, "should have retried at least once");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "gave up too slowly: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn dead_peer_surfaces_typed_disconnect_over_tcp() {
        let base = ports(4);
        let peers = loopback_peers_at(2, base);
        let net = NetConfig {
            recv_timeout: Duration::from_secs(10),
            connect_timeout: Duration::from_millis(600),
            ..NetConfig::default()
        };
        let peers0 = peers.clone();
        let net0 = net.clone();
        let p0 = thread::spawn(move || {
            let ep = connect_mesh(0, &peers0[0], &peers0, net0).expect("party 0 mesh");
            // Party 1 exits right after the handshake; our recv must
            // surface a typed error, never a panic.
            catch_transport(|| ep.recv::<u64>(1))
        });
        let p1 = thread::spawn(move || {
            let ep = connect_mesh(1, &peers[1], &peers, net).expect("party 1 mesh");
            drop(ep); // crash-by-exit
        });
        p1.join().unwrap();
        let res = p0.join().unwrap();
        let err = res.expect_err("recv from dead peer must fail");
        assert_eq!(err.party, 0);
        assert_eq!(err.peer, Some(1));
    }

    #[test]
    fn process_restart_splices_with_replay_from_cursor() {
        // Party 1 consumes 30 frames, "crashes" (drops its endpoint),
        // then rebuilds the mesh via the restart handshake presenting
        // cursor 30. Party 0 must roll back and replay 31..=100, and both
        // sides must count the rejoin.
        let base = ports(4);
        let peers = loopback_peers_at(2, base);
        let net = NetConfig {
            durable_sessions: true,
            recv_timeout: Duration::from_secs(20),
            connect_timeout: Duration::from_secs(10),
            ..NetConfig::default()
        };
        let peers0 = peers.clone();
        let net0 = net.clone();
        let p0 = thread::spawn(move || {
            let ep = connect_mesh(0, &peers0[0], &peers0, net0).expect("party 0 mesh");
            for i in 0..100u64 {
                ep.send(1, &i);
            }
            let sum: u64 = ep.recv(1);
            (sum, ep.stats().rejoins())
        });
        let p1 = thread::spawn(move || {
            let ep = connect_mesh(1, &peers[1], &peers, net.clone()).expect("party 1 mesh");
            let mut sum = 0u64;
            for _ in 0..30 {
                sum += ep.recv::<u64>(0);
            }
            drop(ep); // simulated crash after durably consuming 30 frames
            let ep = connect_mesh_restart(1, &peers[1], &peers, net, None, &[30, 0])
                .expect("party 1 restart mesh");
            for _ in 0..70 {
                sum += ep.recv::<u64>(0);
            }
            ep.send(0, &sum);
            (sum, ep.stats().rejoins())
        });
        let (echoed, rejoins0) = p0.join().unwrap();
        let (sum, rejoins1) = p1.join().unwrap();
        assert_eq!(sum, 4950, "restart must not lose or duplicate frames");
        assert_eq!(echoed, 4950);
        assert!(rejoins0 >= 1, "survivor should count the rejoin");
        assert_eq!(rejoins1, 1, "restarted party counts one spliced session");
    }

    #[test]
    fn restart_past_evicted_frames_is_typed_resume_gap() {
        // Without durable sessions the ring is pruned by cumulative acks;
        // a restart presenting cursor 0 then needs seq 1, which is gone.
        let base = ports(4);
        let peers = loopback_peers_at(2, base);
        let net = NetConfig {
            recv_timeout: Duration::from_secs(5),
            connect_timeout: Duration::from_secs(5),
            ..NetConfig::default()
        };
        let peers0 = peers.clone();
        let net0 = net.clone();
        let p0 = thread::spawn(move || {
            let ep = connect_mesh(0, &peers0[0], &peers0, net0).expect("party 0 mesh");
            for i in 0..200u64 {
                ep.send(1, &i);
            }
            catch_transport(|| ep.recv::<u64>(1))
        });
        let p1 = thread::spawn(move || {
            let ep = connect_mesh(1, &peers[1], &peers, net.clone()).expect("party 1 mesh");
            for _ in 0..200 {
                ep.recv::<u64>(0);
            }
            drop(ep);
            // Cursor 0 despite 200 delivered: the ring was ack-pruned, so
            // the survivor must refuse with a typed gap, not replay junk.
            let ep = connect_mesh_restart(1, &peers[1], &peers, net, None, &[0, 0])
                .expect("restart dial itself succeeds");
            catch_transport(|| ep.recv::<u64>(0))
        });
        let res0 = p0.join().unwrap();
        let _ = p1.join().unwrap(); // restarted side just errors out
        let err = res0.expect_err("survivor must fail on the gap");
        assert_eq!(err.kind, crate::error::TransportErrorKind::ResumeGap);
        assert_eq!(err.missing_seq, Some(1));
        assert_eq!(err.peer, Some(1));
    }

    #[test]
    fn silent_peer_trips_heartbeat_watchdog_into_peer_lost() {
        // A raw fake peer that handshakes and then goes silent forever:
        // the heartbeat watchdog must mark the session broken and the
        // rejoin deadline must surface a typed PeerLost.
        let base = ports(2);
        let addr = format!("127.0.0.1:{base}");
        let listener = TcpListener::bind(&addr).unwrap();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let _ = read_hello(&mut stream, Duration::from_secs(5)).unwrap();
            send_hello(&mut stream, 1, HELLO_INITIAL, 0).unwrap();
            // Silence: no heartbeats, no data. Keep the socket open so
            // the client sees staleness rather than EOF.
            thread::sleep(Duration::from_secs(3));
        });
        let mut retries = 0;
        let mut stream = connect_with_retry(
            &addr,
            Instant::now() + Duration::from_secs(5),
            &mut retries,
            1,
        )
        .unwrap();
        send_hello(&mut stream, 0, HELLO_INITIAL, 0).unwrap();
        read_hello(&mut stream, Duration::from_secs(5)).unwrap();
        let net = NetConfig {
            heartbeat: Some(Duration::from_millis(50)),
            rejoin_deadline: Some(Duration::from_millis(300)),
            recv_timeout: Duration::from_secs(10),
            connect_timeout: Duration::from_secs(10),
            ..NetConfig::default()
        };
        // Acceptor side (no redial_addr): parks at the barrier, then
        // raises PeerLost once the rejoin budget is spent.
        let link = SessionLink::new(0, 1, stream, None, net, None, 0).unwrap();
        let start = Instant::now();
        let err = link.recv_bytes(Duration::from_secs(8)).unwrap_err();
        assert!(
            matches!(err, LinkError::PeerLost { peer: 1, .. }),
            "expected PeerLost, got {err:?}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "watchdog too slow: {:?}",
            start.elapsed()
        );
        server.join().unwrap();
    }

    #[test]
    fn session_survives_many_frames_with_ack_pruning() {
        // More than ACK_EVERY frames so cumulative acks prune the ring.
        let results = run_parties_tcp(2, NetConfig::default(), |ep| {
            if ep.id() == 0 {
                for i in 0..200u64 {
                    ep.send(1, &i);
                }
                ep.recv::<u64>(1)
            } else {
                let mut sum = 0u64;
                for _ in 0..200 {
                    sum += ep.recv::<u64>(0);
                }
                ep.send(0, &sum);
                sum
            }
        });
        let expected: u64 = (0..200).sum();
        assert_eq!(results, vec![expected, expected]);
    }
}
