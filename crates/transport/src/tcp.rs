//! TCP backend: one process per party, one session per peer.
//!
//! This mirrors the paper's deployment (each Pivot client is a separate
//! machine on a LAN) while staying protocol-compatible with the
//! in-process backend: the bytes that cross a socket here are exactly the
//! envelope frames the endpoint stages, so `NetStats` agree bit-for-bit
//! across backends — including across a mid-run reconnect, because
//! replayed frames are transport-internal retransmissions, not new
//! protocol traffic.
//!
//! # Session layer (`PVT2`)
//!
//! Each link is a *session*, not a socket. Frames carry a per-direction
//! monotonic sequence number and are held in a bounded retransmit ring
//! until the peer acknowledges delivery. When a socket breaks mid-run the
//! session survives:
//!
//! - the **lower-id** party redials the peer's rendezvous address with
//!   jittered exponential backoff (bounded by `connect_timeout`);
//! - the **higher-id** party keeps its rendezvous listener alive in a
//!   background acceptor thread and waits for the resume;
//! - the resume handshake exchanges each side's last-delivered sequence
//!   number, and both sides replay any unacknowledged frames from their
//!   ring — the receiver dedups by sequence number, so the delivered
//!   transcript is bit-identical to the fault-free run.
//!
//! If a peer never comes back, the blocked party surfaces a typed
//! [`LinkError::Disconnected`] (never a panic) once the redial budget or
//! the resume-wait deadline expires.

use crate::config::NetConfig;
use crate::endpoint::{join_parties, Endpoint};
use crate::fault::FaultInjector;
use crate::link::{Link, LinkError};
use crate::stats::NetStats;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::VecDeque;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use pivot_runtime::idle::IdleGate;

/// Session protocol magic: "PVT2" (v1 was the pre-reconnect framing).
const MAGIC: [u8; 4] = *b"PVT2";
/// Hello frame: magic(4) + party_id u64 + kind u8 + last_delivered u64.
const HELLO_LEN: usize = 21;
const HELLO_INITIAL: u8 = 0;
const HELLO_RESUME: u8 = 1;
/// Stream frame tags.
const TAG_DATA: u8 = 0;
const TAG_ACK: u8 = 1;
/// Data frame header: tag(1) + seq u64 + len u64.
const DATA_HEADER: usize = 17;
/// Ack frame: tag(1) + delivered u64.
const ACK_FRAME: usize = 9;
/// Largest plausible single frame; anything bigger is a desynced or
/// hostile stream and surfaces as [`LinkError::Malformed`].
const MAX_FRAME_BYTES: u64 = 1 << 32;
/// How long an inbound (resume) handshake may take before the acceptor
/// gives up on that socket.
const INBOUND_HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);
/// Writer-side stall guard: a socket write that blocks this long is
/// treated as broken (the session then rides the reconnect path).
const WRITE_STALL_TIMEOUT: Duration = Duration::from_secs(30);
/// Reader poll quantum: how often the reader re-checks session state
/// (closing / broken / epoch bump) while waiting for bytes.
const READER_POLL: Duration = Duration::from_millis(100);
/// Acceptor poll quantum for the nonblocking rendezvous listener.
const ACCEPT_POLL: Duration = Duration::from_millis(25);
/// Redial backoff: first delay, doubling per attempt up to the max,
/// each jittered to `[0.5d, 1.5d)`.
const BACKOFF_BASE: Duration = Duration::from_millis(25);
const BACKOFF_MAX: Duration = Duration::from_secs(1);
/// Per-attempt cap on a single blocking `connect` during redial, so one
/// black-holed SYN cannot eat the whole budget.
const DIAL_ATTEMPT_CAP: Duration = Duration::from_secs(2);
/// Send a cumulative ACK after this many delivered data frames.
const ACK_EVERY: u64 = 64;
/// Retransmit ring bounds: oldest unacked frames are evicted first once
/// either cap is exceeded (a later resume that still needs an evicted
/// frame fails loudly with a "replay gap" error).
const RING_MAX_FRAMES: usize = 8192;
const RING_MAX_BYTES: usize = 64 << 20;

/// Minimal deterministic PRNG for backoff jitter; the transport crate
/// deliberately has no RNG dependency and the jitter only needs to
/// decorrelate concurrent redials, not be uniform.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Jitter `d` to a uniform-ish `[0.5d, 1.5d)`.
fn jittered(rng: &mut XorShift, d: Duration) -> Duration {
    let nanos = d.as_nanos() as u64;
    if nanos == 0 {
        return d;
    }
    Duration::from_nanos(nanos / 2 + rng.next() % nanos)
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

struct Hello {
    peer: u64,
    kind: u8,
    delivered: u64,
}

fn send_hello(stream: &mut TcpStream, id: usize, kind: u8, delivered: u64) -> io::Result<()> {
    let mut buf = [0u8; HELLO_LEN];
    buf[..4].copy_from_slice(&MAGIC);
    buf[4..12].copy_from_slice(&(id as u64).to_le_bytes());
    buf[12] = kind;
    buf[13..21].copy_from_slice(&delivered.to_le_bytes());
    stream.write_all(&buf)
}

fn read_hello(stream: &mut TcpStream, max_wait: Duration) -> io::Result<Hello> {
    stream.set_read_timeout(Some(max_wait))?;
    let mut buf = [0u8; HELLO_LEN];
    stream.read_exact(&mut buf)?;
    stream.set_read_timeout(None)?;
    if buf[..4] != MAGIC {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            "bad magic in hello (not a pivot PVT2 peer)",
        ));
    }
    let kind = buf[12];
    if kind != HELLO_INITIAL && kind != HELLO_RESUME {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            format!("unknown hello kind {kind}"),
        ));
    }
    Ok(Hello {
        peer: u64::from_le_bytes(buf[4..12].try_into().unwrap()),
        kind,
        delivered: u64::from_le_bytes(buf[13..21].try_into().unwrap()),
    })
}

// ---------------------------------------------------------------------------
// Session state
// ---------------------------------------------------------------------------

struct SessionState {
    /// Current healthy socket, if any.
    stream: Option<TcpStream>,
    /// Bumped on every successful (re)connect; lets the writer detect a
    /// stale cached stream and lets `mark_broken` ignore stale failures.
    epoch: u64,
    /// True while the socket is known-broken and a resume is pending.
    broken: bool,
    broken_since: Option<Instant>,
    /// Set by `Drop`: threads must exit instead of reconnecting.
    closing: bool,
    /// Terminal failure; once set the session never recovers.
    dead: Option<LinkError>,
    /// Next outbound sequence number (first frame is 1).
    next_seq: u64,
    /// Highest inbound sequence delivered to the endpoint.
    delivered: u64,
    /// Last `delivered` value we acked to the peer.
    acked_out: u64,
    /// Highest outbound sequence the peer has acked (ring is pruned to it).
    peer_acked: u64,
    /// Unacked outbound frames, for replay on resume.
    ring: VecDeque<(u64, Arc<Vec<u8>>)>,
    ring_bytes: usize,
}

struct SessionShared {
    local: usize,
    peer: usize,
    /// `Some(addr)`: this side redials on breakage (lower party id).
    /// `None`: this side waits for the peer to redial (higher party id).
    redial_addr: Option<String>,
    net: NetConfig,
    state: Mutex<SessionState>,
    cond: Condvar,
    /// Serializes all socket writes (writer data frames, reader acks,
    /// resume replay). Lock order where both are held: `write_lock`
    /// before `state` (only `finish_resume` takes both).
    write_lock: Mutex<()>,
    /// Interruptible sleep for redial backoff, so `Drop` never waits out
    /// a pending backoff.
    gate: IdleGate,
    stats: OnceLock<Arc<NetStats>>,
    injector: Option<Arc<FaultInjector>>,
}

impl SessionShared {
    fn with_stats(&self, f: impl FnOnce(&NetStats)) {
        if let Some(stats) = self.stats.get() {
            f(stats);
        }
    }

    fn dead_reason(&self) -> Option<LinkError> {
        self.state.lock().unwrap().dead.clone()
    }

    fn set_dead(&self, err: LinkError) {
        let mut st = self.state.lock().unwrap();
        if st.dead.is_none() {
            st.dead = Some(err);
        }
        if let Some(s) = st.stream.take() {
            let _ = s.shutdown(Shutdown::Both);
        }
        self.cond.notify_all();
    }
}

/// Mark the current socket broken (if `epoch_seen` is still current) and
/// wake anyone waiting on session state. Stale failures from an already
/// replaced socket are ignored.
fn mark_broken(shared: &SessionShared, epoch_seen: u64) {
    let mut st = shared.state.lock().unwrap();
    if st.closing || st.dead.is_some() || st.epoch != epoch_seen || st.broken {
        return;
    }
    st.broken = true;
    st.broken_since = Some(Instant::now());
    if let Some(s) = st.stream.take() {
        let _ = s.shutdown(Shutdown::Both);
    }
    shared.cond.notify_all();
}

fn write_data_frame(stream: &mut TcpStream, seq: u64, payload: &[u8]) -> io::Result<()> {
    let mut header = [0u8; DATA_HEADER];
    header[0] = TAG_DATA;
    header[1..9].copy_from_slice(&seq.to_le_bytes());
    header[9..17].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    stream.write_all(&header)?;
    stream.write_all(payload)
}

fn write_ack_frame(stream: &mut TcpStream, delivered: u64) -> io::Result<()> {
    let mut buf = [0u8; ACK_FRAME];
    buf[0] = TAG_ACK;
    buf[1..9].copy_from_slice(&delivered.to_le_bytes());
    stream.write_all(&buf)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Outbound job: the payload plus a fault-injection tag. `sever == true`
/// means "ring this frame but break the socket instead of writing it" —
/// the frame is then replayed on resume, which is what guarantees
/// `replayed_frames >= 1` for an injected drop.
type OutJob = (Vec<u8>, bool);

fn writer_loop(shared: &Arc<SessionShared>, rx: Receiver<OutJob>) {
    let mut cached: Option<(u64, TcpStream)> = None;
    while let Ok((payload, sever)) = rx.recv() {
        let payload = Arc::new(payload);
        // Assign a sequence number and ring the frame under the state
        // lock; snapshot health so the write itself happens lock-free.
        let (seq, broken, epoch) = {
            let mut st = shared.state.lock().unwrap();
            // `closing` does NOT stop the writer: `Drop` sets it before
            // joining us precisely so we flush the queue's tail (a party's
            // final frames) on the way out. Only a dead session skips.
            if st.dead.is_some() {
                continue;
            }
            let seq = st.next_seq;
            st.next_seq += 1;
            st.ring_bytes += payload.len();
            st.ring.push_back((seq, Arc::clone(&payload)));
            while st.ring.len() > 1
                && (st.ring.len() > RING_MAX_FRAMES || st.ring_bytes > RING_MAX_BYTES)
            {
                if let Some((_, old)) = st.ring.pop_front() {
                    st.ring_bytes -= old.len();
                }
            }
            if cached.as_ref().map(|(e, _)| *e) != Some(st.epoch) {
                cached = st
                    .stream
                    .as_ref()
                    .and_then(|s| s.try_clone().ok())
                    .map(|s| (st.epoch, s));
            }
            (seq, st.broken, st.epoch)
        };
        if sever {
            // Injected drop: the frame stays ringed and unwritten; break
            // the socket so the reconnect path replays it.
            mark_broken(shared, epoch);
            cached = None;
            continue;
        }
        if broken {
            // Socket already down; `finish_resume` will replay the ring.
            continue;
        }
        let Some((cached_epoch, stream)) = cached.as_mut() else {
            continue;
        };
        if *cached_epoch != epoch {
            continue;
        }
        let res = {
            let _w = shared.write_lock.lock().unwrap();
            write_data_frame(stream, seq, &payload)
        };
        if res.is_err() {
            mark_broken(shared, epoch);
            cached = None;
        }
    }
    // Channel closed: link is dropping; every accepted job was either
    // written or left ringed for replay, so nothing to flush here.
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Parse and act on every complete frame in `pending`, removing consumed
/// bytes. Returns `Ok(false)` when the inbound channel is gone (link
/// dropped), `Err` on a malformed stream.
fn drain_frames(
    shared: &Arc<SessionShared>,
    pending: &mut Vec<u8>,
    in_tx: &Sender<Vec<u8>>,
) -> Result<bool, LinkError> {
    let mut consumed = 0usize;
    loop {
        let buf = &pending[consumed..];
        if buf.is_empty() {
            break;
        }
        match buf[0] {
            TAG_DATA => {
                if buf.len() < DATA_HEADER {
                    break;
                }
                let seq = u64::from_le_bytes(buf[1..9].try_into().unwrap());
                let len = u64::from_le_bytes(buf[9..17].try_into().unwrap());
                if len > MAX_FRAME_BYTES {
                    return Err(LinkError::Malformed(format!(
                        "frame length {len} exceeds {MAX_FRAME_BYTES} byte cap"
                    )));
                }
                let len = len as usize;
                if buf.len() < DATA_HEADER + len {
                    break;
                }
                let payload = buf[DATA_HEADER..DATA_HEADER + len].to_vec();
                consumed += DATA_HEADER + len;
                let (deliver, ack_now) = {
                    let mut st = shared.state.lock().unwrap();
                    if seq <= st.delivered {
                        // Stale duplicate from a replaced socket or a
                        // resume replay overlap; already delivered.
                        (false, false)
                    } else if seq == st.delivered + 1 {
                        st.delivered = seq;
                        let ack = st.delivered - st.acked_out >= ACK_EVERY;
                        if ack {
                            st.acked_out = st.delivered;
                        }
                        (true, ack)
                    } else {
                        return Err(LinkError::Malformed(format!(
                            "sequence gap: got frame {seq}, expected {}",
                            st.delivered + 1
                        )));
                    }
                };
                if deliver && in_tx.send(payload).is_err() {
                    return Ok(false);
                }
                if ack_now {
                    send_ack(shared, seq);
                }
            }
            TAG_ACK => {
                if buf.len() < ACK_FRAME {
                    break;
                }
                let delivered = u64::from_le_bytes(buf[1..9].try_into().unwrap());
                consumed += ACK_FRAME;
                let mut st = shared.state.lock().unwrap();
                if delivered > st.peer_acked {
                    st.peer_acked = delivered;
                }
                while st.ring.front().is_some_and(|(seq, _)| *seq <= delivered) {
                    if let Some((_, old)) = st.ring.pop_front() {
                        st.ring_bytes -= old.len();
                    }
                }
            }
            tag => {
                return Err(LinkError::Malformed(format!("unknown frame tag {tag}")));
            }
        }
    }
    pending.drain(..consumed);
    Ok(true)
}

/// Best-effort cumulative ack on the current socket; a failed ack is
/// harmless (the peer keeps the frames ringed a little longer).
fn send_ack(shared: &SessionShared, delivered: u64) {
    let stream = {
        let st = shared.state.lock().unwrap();
        if st.broken {
            return;
        }
        st.stream.as_ref().and_then(|s| s.try_clone().ok())
    };
    if let Some(mut stream) = stream {
        let _w = shared.write_lock.lock().unwrap();
        let _ = write_ack_frame(&mut stream, delivered);
    }
}

fn reader_loop(shared: &Arc<SessionShared>, in_tx: Sender<Vec<u8>>) {
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    'outer: loop {
        // Get a healthy stream, riding the reconnect path if needed.
        let (mut stream, epoch) = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.closing || st.dead.is_some() {
                    return;
                }
                if st.broken {
                    if shared.redial_addr.is_some() {
                        drop(st);
                        redial(shared);
                        continue 'outer;
                    }
                    // Acceptor side: wait for the peer to redial us.
                    let deadline = st
                        .broken_since
                        .map(|t| t + shared.net.connect_timeout)
                        .unwrap_or_else(|| Instant::now() + shared.net.connect_timeout);
                    if Instant::now() >= deadline {
                        drop(st);
                        shared.set_dead(LinkError::Disconnected(format!(
                            "party {} did not resume within {:?}",
                            shared.peer, shared.net.connect_timeout
                        )));
                        return;
                    }
                    let (next, _) = shared.cond.wait_timeout(st, READER_POLL).unwrap();
                    st = next;
                    continue;
                }
                match st.stream.as_ref().and_then(|s| s.try_clone().ok()) {
                    Some(s) => break (s, st.epoch),
                    None => {
                        let (next, _) = shared.cond.wait_timeout(st, READER_POLL).unwrap();
                        st = next;
                    }
                }
            }
        };
        if stream.set_read_timeout(Some(READER_POLL)).is_err() {
            mark_broken(shared, epoch);
            continue;
        }
        // A fresh socket means any partial frame from the old one is
        // stale; unacked frames are replayed whole on resume.
        pending.clear();
        loop {
            {
                let st = shared.state.lock().unwrap();
                if st.closing || st.dead.is_some() {
                    return;
                }
                if st.broken || st.epoch != epoch {
                    continue 'outer;
                }
            }
            match stream.read(&mut chunk) {
                Ok(0) => {
                    mark_broken(shared, epoch);
                    continue 'outer;
                }
                Ok(n) => {
                    pending.extend_from_slice(&chunk[..n]);
                    match drain_frames(shared, &mut pending, &in_tx) {
                        Ok(true) => {}
                        Ok(false) => return, // link dropped
                        Err(err) => {
                            shared.set_dead(err);
                            return;
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    mark_broken(shared, epoch);
                    continue 'outer;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Reconnect
// ---------------------------------------------------------------------------

/// Lower-id side: redial the peer's rendezvous address with jittered
/// exponential backoff until the session resumes, the budget runs out,
/// or the link is closing.
fn redial(shared: &Arc<SessionShared>) {
    let _span = pivot_trace::runtime_span("reconnect");
    let addr = shared.redial_addr.as_ref().expect("redial without addr");
    let seed = shared
        .injector
        .as_ref()
        .map(|i| i.seed())
        .unwrap_or(0x9e3779b97f4a7c15)
        ^ (((shared.local as u64) << 32) | shared.peer as u64);
    let mut rng = XorShift::new(seed);
    let deadline = Instant::now() + shared.net.connect_timeout;
    let mut delay = BACKOFF_BASE;
    loop {
        {
            let st = shared.state.lock().unwrap();
            if st.closing || st.dead.is_some() || !st.broken {
                return;
            }
        }
        match try_resume(shared, addr, deadline) {
            Ok(()) => return,
            Err(_) => {
                shared.with_stats(|s| s.record_connect_retry());
                if Instant::now() >= deadline {
                    shared.set_dead(LinkError::Disconnected(format!(
                        "could not resume session with party {} within {:?}",
                        shared.peer, shared.net.connect_timeout
                    )));
                    return;
                }
                // Interruptible backoff: Drop trips the gate.
                if !shared.gate.wait_for(jittered(&mut rng, delay)) {
                    return;
                }
                delay = (delay * 2).min(BACKOFF_MAX);
            }
        }
    }
}

/// One resume attempt: dial, exchange resume hellos, splice the new
/// socket into the session.
fn try_resume(shared: &Arc<SessionShared>, addr: &str, deadline: Instant) -> io::Result<()> {
    let budget = deadline
        .saturating_duration_since(Instant::now())
        .min(DIAL_ATTEMPT_CAP);
    if budget.is_zero() {
        return Err(io::Error::new(ErrorKind::TimedOut, "redial budget spent"));
    }
    let mut last: Option<io::Error> = None;
    let mut stream: Option<TcpStream> = None;
    for sock_addr in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&sock_addr, budget) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(e) => last = Some(e),
        }
    }
    let mut stream = stream.ok_or_else(|| {
        last.unwrap_or_else(|| io::Error::new(ErrorKind::AddrNotAvailable, "no addresses"))
    })?;
    stream.set_nodelay(true)?;
    stream.set_write_timeout(Some(WRITE_STALL_TIMEOUT))?;
    let delivered = shared.state.lock().unwrap().delivered;
    send_hello(&mut stream, shared.local, HELLO_RESUME, delivered)?;
    let hello = read_hello(&mut stream, INBOUND_HANDSHAKE_TIMEOUT)?;
    if hello.peer as usize != shared.peer || hello.kind != HELLO_RESUME {
        return Err(io::Error::new(
            ErrorKind::InvalidData,
            format!("resume answered by unexpected party {}", hello.peer),
        ));
    }
    finish_resume(shared, stream, hello.delivered)
}

/// Splice a fresh socket into the session (both sides): prune the ring
/// to what the peer already delivered, replay the rest, and flip the
/// session back to healthy.
fn finish_resume(
    shared: &Arc<SessionShared>,
    mut stream: TcpStream,
    peer_delivered: u64,
) -> io::Result<()> {
    // Lock order: write_lock before state (the only place both are held)
    // so no data or ack frame interleaves with the replay.
    let _w = shared.write_lock.lock().unwrap();
    let mut st = shared.state.lock().unwrap();
    if st.closing || st.dead.is_some() {
        return Err(io::Error::other("session closed"));
    }
    if let Some(old) = st.stream.take() {
        let _ = old.shutdown(Shutdown::Both);
    }
    while st
        .ring
        .front()
        .is_some_and(|(seq, _)| *seq <= peer_delivered)
    {
        if let Some((_, old)) = st.ring.pop_front() {
            st.ring_bytes -= old.len();
        }
    }
    if st.peer_acked < peer_delivered {
        st.peer_acked = peer_delivered;
    }
    // The ring must cover everything past the peer's delivery horizon;
    // if eviction outran the peer the transcript is unrecoverable.
    let gap = match st.ring.front() {
        Some((seq, _)) => *seq != peer_delivered + 1,
        None => st.next_seq - 1 > peer_delivered,
    };
    if gap {
        let err = LinkError::Disconnected(format!(
            "replay gap: party {} resumed at seq {} but the retransmit ring starts later",
            shared.peer,
            peer_delivered + 1
        ));
        st.dead = Some(err);
        shared.cond.notify_all();
        return Err(io::Error::other("replay gap"));
    }
    let replayed = st.ring.len() as u64;
    for (seq, payload) in st.ring.iter() {
        write_data_frame(&mut stream, *seq, payload)?;
    }
    st.stream = Some(stream);
    st.epoch += 1;
    st.broken = false;
    st.broken_since = None;
    shared.with_stats(|s| {
        s.record_reconnect();
        if replayed > 0 {
            s.record_replayed_frames(replayed);
        }
    });
    shared.cond.notify_all();
    Ok(())
}

// ---------------------------------------------------------------------------
// Link
// ---------------------------------------------------------------------------

/// One resumable session to a peer. See the module docs for the
/// reconnect protocol.
pub struct SessionLink {
    shared: Arc<SessionShared>,
    out_tx: Option<Sender<OutJob>>,
    in_rx: Receiver<Vec<u8>>,
    writer: Option<JoinHandle<()>>,
    reader: Option<JoinHandle<()>>,
}

impl SessionLink {
    fn new(
        local: usize,
        peer: usize,
        stream: TcpStream,
        redial_addr: Option<String>,
        net: NetConfig,
        injector: Option<Arc<FaultInjector>>,
    ) -> io::Result<SessionLink> {
        stream.set_nodelay(true)?;
        stream.set_write_timeout(Some(WRITE_STALL_TIMEOUT))?;
        let shared = Arc::new(SessionShared {
            local,
            peer,
            redial_addr,
            net,
            state: Mutex::new(SessionState {
                stream: Some(stream),
                epoch: 1,
                broken: false,
                broken_since: None,
                closing: false,
                dead: None,
                next_seq: 1,
                delivered: 0,
                acked_out: 0,
                peer_acked: 0,
                ring: VecDeque::new(),
                ring_bytes: 0,
            }),
            cond: Condvar::new(),
            write_lock: Mutex::new(()),
            gate: IdleGate::new(),
            stats: OnceLock::new(),
            injector,
        });
        let (out_tx, out_rx) = unbounded::<OutJob>();
        let (in_tx, in_rx) = unbounded::<Vec<u8>>();
        let w_shared = Arc::clone(&shared);
        let writer = thread::Builder::new()
            .name(format!("pvt-w-{local}-{peer}"))
            .spawn(move || writer_loop(&w_shared, out_rx))?;
        let r_shared = Arc::clone(&shared);
        let reader = thread::Builder::new()
            .name(format!("pvt-r-{local}-{peer}"))
            .spawn(move || reader_loop(&r_shared, in_tx))?;
        Ok(SessionLink {
            shared,
            out_tx: Some(out_tx),
            in_rx,
            writer: Some(writer),
            reader: Some(reader),
        })
    }
}

impl Link for SessionLink {
    fn peer(&self) -> usize {
        self.shared.peer
    }

    fn send_bytes(&self, bytes: Vec<u8>) -> Result<(), LinkError> {
        // Fault decisions happen here, on the protocol thread, so a
        // seeded plan fires at a deterministic point in the transcript.
        let mut sever = false;
        if let Some(inj) = &self.shared.injector {
            let fault = inj.on_send(self.shared.peer, bytes.len());
            if let Some(reason) = fault.crash {
                self.shared.with_stats(|s| s.record_fault_injected());
                crate::error::TransportError::new(
                    crate::error::TransportErrorKind::InjectedCrash,
                    self.shared.local,
                    reason,
                )
                .raise();
            }
            if let Some(delay) = fault.delay {
                self.shared.with_stats(|s| s.record_fault_injected());
                thread::sleep(delay);
            }
            if fault.drop_link {
                self.shared.with_stats(|s| s.record_fault_injected());
                sever = true;
            }
        }
        match &self.out_tx {
            Some(tx) => tx.send((bytes, sever)).map_err(|_| {
                self.shared
                    .dead_reason()
                    .unwrap_or_else(|| LinkError::Disconnected("writer thread exited".into()))
            }),
            None => Err(LinkError::Disconnected("link closed".into())),
        }
    }

    fn recv_bytes(&self, timeout: Duration) -> Result<Vec<u8>, LinkError> {
        match self.in_rx.recv_timeout(timeout) {
            Ok(bytes) => Ok(bytes),
            Err(RecvTimeoutError::Timeout) => Err(self
                .shared
                .dead_reason()
                .unwrap_or(LinkError::Timeout(timeout))),
            Err(RecvTimeoutError::Disconnected) => Err(self
                .shared
                .dead_reason()
                .unwrap_or_else(|| LinkError::Disconnected("session closed".into()))),
        }
    }

    fn attach_stats(&self, stats: &Arc<NetStats>) {
        let _ = self.shared.stats.set(Arc::clone(stats));
    }
}

impl Drop for SessionLink {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.closing = true;
        }
        self.shared.gate.interrupt();
        self.shared.cond.notify_all();
        // Closing the job channel lets the writer drain and exit.
        drop(self.out_tx.take());
        if let Some(w) = self.writer.take() {
            let _ = w.join();
        }
        {
            let mut st = self.shared.state.lock().unwrap();
            if let Some(s) = st.stream.take() {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
        if let Some(r) = self.reader.take() {
            let _ = r.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Rendezvous
// ---------------------------------------------------------------------------

/// Dial `addr` until it answers or the deadline passes, with jittered
/// exponential backoff between attempts. Each failed attempt increments
/// `retries`. Used both for initial rendezvous (peers start in arbitrary
/// order) and for session resume.
pub fn connect_with_retry(
    addr: &str,
    deadline: Instant,
    retries: &mut u64,
    seed: u64,
) -> io::Result<TcpStream> {
    let mut rng = XorShift::new(seed);
    let mut delay = BACKOFF_BASE;
    loop {
        let budget = deadline
            .saturating_duration_since(Instant::now())
            .min(DIAL_ATTEMPT_CAP);
        if budget.is_zero() {
            return Err(io::Error::new(
                ErrorKind::TimedOut,
                format!("gave up dialing {addr} (connect budget spent)"),
            ));
        }
        let mut last: Option<io::Error> = None;
        let mut resolved = false;
        for sock_addr in addr.to_socket_addrs()? {
            resolved = true;
            match TcpStream::connect_timeout(&sock_addr, budget) {
                Ok(s) => return Ok(s),
                Err(e) => last = Some(e),
            }
        }
        *retries += 1;
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(io::Error::new(
                ErrorKind::TimedOut,
                format!(
                    "gave up dialing {addr}: {}",
                    last.map(|e| e.to_string()).unwrap_or_else(|| if resolved {
                        "connect failed".into()
                    } else {
                        "no resolvable addresses".into()
                    })
                ),
            ));
        }
        thread::sleep(jittered(&mut rng, delay).min(remaining));
        delay = (delay * 2).min(BACKOFF_MAX);
    }
}

/// Registry entry for the background acceptor: sessions it may resume.
type ResumeRegistry = Vec<(usize, Weak<SessionShared>)>;

/// Background acceptor (higher-id side of each link): keeps the
/// rendezvous listener alive and splices resume connections back into
/// their sessions. Exits once every registered session is gone.
fn acceptor_loop(listener: TcpListener, registry: ResumeRegistry) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    loop {
        if !registry.iter().any(|(_, weak)| weak.strong_count() > 0) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                handle_inbound(stream, &registry);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

fn handle_inbound(mut stream: TcpStream, registry: &ResumeRegistry) {
    let Ok(hello) = read_hello(&mut stream, INBOUND_HANDSHAKE_TIMEOUT) else {
        return;
    };
    if hello.kind != HELLO_RESUME {
        return;
    }
    let Some(shared) = registry
        .iter()
        .find(|(peer, _)| *peer == hello.peer as usize)
        .and_then(|(_, weak)| weak.upgrade())
    else {
        return;
    };
    if stream.set_nodelay(true).is_err()
        || stream.set_write_timeout(Some(WRITE_STALL_TIMEOUT)).is_err()
    {
        return;
    }
    let delivered = shared.state.lock().unwrap().delivered;
    if send_hello(&mut stream, shared.local, HELLO_RESUME, delivered).is_err() {
        return;
    }
    let _ = finish_resume(&shared, stream, hello.delivered);
}

/// Establish the full mesh for party `id`: bind `listen`, dial every
/// lower id, accept every higher id, and return a ready [`Endpoint`].
///
/// `peers[i]` is party `i`'s address; `peers[id]` should equal `listen`
/// (it is ignored). Parties may start in any order: dialing retries with
/// backoff until `net.connect_timeout` expires.
pub fn connect_mesh(
    id: usize,
    listen: &str,
    peers: &[String],
    net: NetConfig,
) -> io::Result<Endpoint> {
    connect_mesh_with(id, listen, peers, net, None)
}

/// [`connect_mesh`] with an optional deterministic fault injector wired
/// into every link (and the endpoint, for round-boundary crash faults).
pub fn connect_mesh_with(
    id: usize,
    listen: &str,
    peers: &[String],
    net: NetConfig,
    injector: Option<Arc<FaultInjector>>,
) -> io::Result<Endpoint> {
    let m = peers.len();
    assert!(id < m, "party id {id} out of range for {m} peers");
    let deadline = Instant::now() + net.connect_timeout;
    let listener = TcpListener::bind(listen)?;
    let mut links: Vec<Option<Box<dyn Link>>> = (0..m).map(|_| None).collect();
    let mut registry: ResumeRegistry = Vec::new();
    let mut dial_retries = 0u64;
    let seed_base = injector
        .as_ref()
        .map(|i| i.seed())
        .unwrap_or(0x5851f42d4c957f2d);

    // Dial every lower id (their listeners are up or will be shortly;
    // retry with backoff either way). We are the higher id on these
    // links, so the peer redials *us* on breakage: register the session
    // with our background acceptor.
    for peer in 0..id {
        let seed = seed_base ^ (((id as u64) << 32) | peer as u64);
        let mut stream = connect_with_retry(&peers[peer], deadline, &mut dial_retries, seed)?;
        send_hello(&mut stream, id, HELLO_INITIAL, 0)?;
        let hello = read_hello(&mut stream, INBOUND_HANDSHAKE_TIMEOUT)?;
        if hello.peer as usize != peer || hello.kind != HELLO_INITIAL {
            return Err(io::Error::new(
                ErrorKind::InvalidData,
                format!(
                    "dialed party {peer} but party {} answered the handshake",
                    hello.peer
                ),
            ));
        }
        let link = SessionLink::new(id, peer, stream, None, net.clone(), injector.clone())?;
        registry.push((peer, Arc::downgrade(&link.shared)));
        links[peer] = Some(Box::new(link));
    }

    // Accept every higher id. We are the lower id on these links, so we
    // redial the peer's rendezvous address on breakage.
    let mut pending = m - 1 - id;
    while pending > 0 {
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                ErrorKind::TimedOut,
                format!("party {id}: timed out waiting for {pending} peer(s) to connect"),
            ));
        }
        listener.set_nonblocking(true)?;
        let accepted = match listener.accept() {
            Ok((stream, _)) => Some(stream),
            Err(e) if e.kind() == ErrorKind::WouldBlock => None,
            Err(e) => return Err(e),
        };
        listener.set_nonblocking(false)?;
        let Some(mut stream) = accepted else {
            thread::sleep(ACCEPT_POLL);
            continue;
        };
        let Ok(hello) = read_hello(&mut stream, INBOUND_HANDSHAKE_TIMEOUT) else {
            continue; // not a peer; ignore the socket
        };
        let peer = hello.peer as usize;
        if hello.kind != HELLO_INITIAL || peer <= id || peer >= m || links[peer].is_some() {
            continue;
        }
        send_hello(&mut stream, id, HELLO_INITIAL, 0)?;
        let link = SessionLink::new(
            id,
            peer,
            stream,
            Some(peers[peer].clone()),
            net.clone(),
            injector.clone(),
        )?;
        links[peer] = Some(Box::new(link));
        pending -= 1;
    }

    // Keep the listener alive for resumes if any peer may redial us.
    if !registry.is_empty() {
        thread::Builder::new()
            .name(format!("pvt-accept-{id}"))
            .spawn(move || acceptor_loop(listener, registry))?;
    }

    let ep = Endpoint::from_links(id, links, net);
    for _ in 0..dial_retries {
        ep.stats().record_connect_retry();
    }
    if let Some(inj) = injector {
        ep.set_fault_injector(inj);
    }
    Ok(ep)
}

/// Loopback addresses for an `m`-party mesh on freshly reserved ports
/// (concurrent meshes in one process never collide).
pub fn loopback_peers(m: usize) -> Vec<String> {
    loopback_peers_at(m, reserve_ports(m as u16))
}

/// Loopback addresses for an `m`-party mesh starting at `base_port`.
pub fn loopback_peers_at(m: usize, base_port: u16) -> Vec<String> {
    (0..m)
        .map(|i| format!("127.0.0.1:{}", base_port + i as u16))
        .collect()
}

/// Monotonic loopback port allocator so concurrent test meshes in one
/// process never collide.
static NEXT_PORT: std::sync::atomic::AtomicU16 = std::sync::atomic::AtomicU16::new(29500);

/// Reserve `n` consecutive loopback ports.
pub fn reserve_ports(n: u16) -> u16 {
    NEXT_PORT.fetch_add(n, std::sync::atomic::Ordering::Relaxed)
}

/// Run an `m`-party protocol over real TCP sockets on loopback, one OS
/// thread per party (used by tests; production runs use one process per
/// party via `pivot party`).
pub fn run_parties_tcp<T, F>(m: usize, net: NetConfig, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Endpoint) -> T + Send + Sync,
{
    let peers = loopback_peers(m);
    join_parties(m, |id| {
        let ep = connect_mesh(id, &peers[id], &peers, net.clone()).expect("connect_mesh failed");
        f(ep)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::catch_transport;
    use crate::fault::FaultPlan;

    fn ports(n: u16) -> u16 {
        reserve_ports(n)
    }

    #[test]
    fn tcp_mesh_carries_coalesced_envelopes() {
        let results = run_parties_tcp(3, NetConfig::default(), |ep| {
            // Each party sends (id * 10 + peer) to every peer and
            // receives the mirror image.
            for peer in 0..3 {
                if peer != ep.id() {
                    ep.send(peer, &((ep.id() * 10 + peer) as u64));
                }
            }
            let mut got = Vec::new();
            for peer in 0..3 {
                if peer != ep.id() {
                    got.push(ep.recv::<u64>(peer));
                }
            }
            got
        });
        assert_eq!(results[0], vec![10, 20]);
        assert_eq!(results[1], vec![1, 21]);
        assert_eq!(results[2], vec![2, 12]);
    }

    #[test]
    fn injected_drop_recovers_transparently_with_replay() {
        let base = ports(8);
        let peers = loopback_peers_at(2, base);
        let plan = FaultPlan::parse(&["drop_link 0-1 at_bytes=1".into()], 7).unwrap();
        let peers0 = peers.clone();
        let p0 = thread::spawn(move || {
            let inj = FaultInjector::new(0, 2, &plan);
            let ep = connect_mesh_with(0, &peers0[0], &peers0, NetConfig::default(), Some(inj))
                .expect("party 0 mesh");
            for i in 0..50u64 {
                ep.send(1, &i);
            }
            let sum: u64 = ep.recv(1);
            let stats = ep.stats();
            (
                sum,
                stats.faults_injected(),
                stats.reconnects(),
                stats.replayed_frames(),
            )
        });
        let p1 = thread::spawn(move || {
            let ep =
                connect_mesh(1, &peers[1], &peers, NetConfig::default()).expect("party 1 mesh");
            let mut sum = 0u64;
            for _ in 0..50 {
                sum += ep.recv::<u64>(0);
            }
            ep.send(0, &sum);
            sum
        });
        let (sum, faults, reconnects, replayed) = p0.join().unwrap();
        let echoed = p1.join().unwrap();
        assert_eq!(sum, 1225);
        assert_eq!(echoed, 1225);
        assert!(faults >= 1, "fault should be recorded (got {faults})");
        assert!(
            reconnects >= 1,
            "session should reconnect (got {reconnects})"
        );
        assert!(
            replayed >= 1,
            "severed frame should replay (got {replayed})"
        );
    }

    #[test]
    fn garbage_frames_surface_as_malformed() {
        let base = ports(2);
        let addr = format!("127.0.0.1:{base}");
        let listener = TcpListener::bind(&addr).unwrap();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let hello = read_hello(&mut stream, Duration::from_secs(5)).unwrap();
            assert_eq!(hello.kind, HELLO_INITIAL);
            send_hello(&mut stream, 1, HELLO_INITIAL, 0).unwrap();
            // Oversized length in an otherwise valid data frame header.
            let mut frame = vec![TAG_DATA];
            frame.extend_from_slice(&1u64.to_le_bytes());
            frame.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
            stream.write_all(&frame).unwrap();
            // Keep the socket open so the client parses the frame rather
            // than seeing EOF first.
            thread::sleep(Duration::from_millis(500));
        });
        let mut retries = 0;
        let mut stream = connect_with_retry(
            &addr,
            Instant::now() + Duration::from_secs(5),
            &mut retries,
            1,
        )
        .unwrap();
        send_hello(&mut stream, 0, HELLO_INITIAL, 0).unwrap();
        let hello = read_hello(&mut stream, Duration::from_secs(5)).unwrap();
        assert_eq!(hello.peer, 1);
        let link = SessionLink::new(0, 1, stream, None, NetConfig::default(), None).unwrap();
        let err = link.recv_bytes(Duration::from_secs(5)).unwrap_err();
        assert!(
            matches!(err, LinkError::Malformed(_)),
            "expected Malformed, got {err:?}"
        );
        server.join().unwrap();
    }

    #[test]
    fn bad_tag_is_malformed_not_panic() {
        let base = ports(2);
        let addr = format!("127.0.0.1:{base}");
        let listener = TcpListener::bind(&addr).unwrap();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let _ = read_hello(&mut stream, Duration::from_secs(5)).unwrap();
            send_hello(&mut stream, 1, HELLO_INITIAL, 0).unwrap();
            stream.write_all(&[0xFF, 1, 2, 3]).unwrap();
            thread::sleep(Duration::from_millis(500));
        });
        let mut retries = 0;
        let mut stream = connect_with_retry(
            &addr,
            Instant::now() + Duration::from_secs(5),
            &mut retries,
            1,
        )
        .unwrap();
        send_hello(&mut stream, 0, HELLO_INITIAL, 0).unwrap();
        read_hello(&mut stream, Duration::from_secs(5)).unwrap();
        let link = SessionLink::new(0, 1, stream, None, NetConfig::default(), None).unwrap();
        let err = link.recv_bytes(Duration::from_secs(5)).unwrap_err();
        assert!(matches!(err, LinkError::Malformed(_)), "{err:?}");
        server.join().unwrap();
    }

    #[test]
    fn connect_with_retry_gives_up_within_budget() {
        // Port 1 on loopback is essentially guaranteed closed; connects
        // fail fast with ECONNREFUSED, so retries accumulate.
        let start = Instant::now();
        let mut retries = 0;
        let err = connect_with_retry(
            "127.0.0.1:1",
            Instant::now() + Duration::from_millis(300),
            &mut retries,
            42,
        )
        .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::TimedOut);
        assert!(retries > 0, "should have retried at least once");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "gave up too slowly: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn dead_peer_surfaces_typed_disconnect_over_tcp() {
        let base = ports(4);
        let peers = loopback_peers_at(2, base);
        let net = NetConfig {
            recv_timeout: Duration::from_secs(10),
            connect_timeout: Duration::from_millis(600),
            ..NetConfig::default()
        };
        let peers0 = peers.clone();
        let net0 = net.clone();
        let p0 = thread::spawn(move || {
            let ep = connect_mesh(0, &peers0[0], &peers0, net0).expect("party 0 mesh");
            // Party 1 exits right after the handshake; our recv must
            // surface a typed error, never a panic.
            catch_transport(|| ep.recv::<u64>(1))
        });
        let p1 = thread::spawn(move || {
            let ep = connect_mesh(1, &peers[1], &peers, net).expect("party 1 mesh");
            drop(ep); // crash-by-exit
        });
        p1.join().unwrap();
        let res = p0.join().unwrap();
        let err = res.expect_err("recv from dead peer must fail");
        assert_eq!(err.party, 0);
        assert_eq!(err.peer, Some(1));
    }

    #[test]
    fn session_survives_many_frames_with_ack_pruning() {
        // More than ACK_EVERY frames so cumulative acks prune the ring.
        let results = run_parties_tcp(2, NetConfig::default(), |ep| {
            if ep.id() == 0 {
                for i in 0..200u64 {
                    ep.send(1, &i);
                }
                ep.recv::<u64>(1)
            } else {
                let mut sum = 0u64;
                for _ in 0..200 {
                    sum += ep.recv::<u64>(0);
                }
                ep.send(0, &sum);
                sum
            }
        });
        let expected: u64 = (0..200).sum();
        assert_eq!(results, vec![expected, expected]);
    }
}
