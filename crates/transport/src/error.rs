//! Typed transport failures and the unwind boundary that surfaces them.
//!
//! The SPMD protocols call [`crate::Endpoint`] collectives at thousands
//! of sites with infallible signatures — threading `Result` through every
//! share/open/multiply would bury the protocol code in plumbing for a
//! failure that, once it happens, always ends the run. Instead the
//! endpoint raises a [`TransportError`] as a *typed unwind*
//! (`std::panic::panic_any`, never the `panic!` macro with a string) and
//! the protocol driver wraps the whole run in [`catch_transport`], which
//! turns the unwind back into `Result<T, TransportError>` at exactly one
//! place. Anything that is not a `TransportError` keeps unwinding — real
//! bugs still abort loudly.

use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Which half of a link operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Failure while handing bytes to the peer.
    Send,
    /// Failure while waiting for bytes from the peer.
    Recv,
}

impl Direction {
    /// The report spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::Send => "send",
            Direction::Recv => "recv",
        }
    }
}

/// The failure class, mirroring [`crate::LinkError`] plus injected
/// crashes from a scenario fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportErrorKind {
    /// Nothing arrived within the wedge deadline.
    Timeout,
    /// The peer hung up and the session could not be resumed.
    Disconnected,
    /// The peer sent bytes that do not parse (desynced or hostile
    /// stream, or asymmetric coalescing configuration).
    Malformed,
    /// A `crash_party` fault from the scenario `[faults]` plan fired on
    /// this party.
    InjectedCrash,
    /// A peer stayed gone past the `[network] rejoin_deadline_s` budget:
    /// the session parked at the barrier waiting for a restart that
    /// never came. Names the dead party via `peer`.
    PeerLost,
    /// A session resume/restart needed a frame the retransmit ring no
    /// longer holds (eviction outran the peer, or the peer restarted
    /// from a checkpoint older than the retention floor). The first
    /// missing sequence number is in
    /// [`TransportError::missing_seq`].
    ResumeGap,
}

impl TransportErrorKind {
    /// The report spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            TransportErrorKind::Timeout => "timeout",
            TransportErrorKind::Disconnected => "disconnected",
            TransportErrorKind::Malformed => "malformed",
            TransportErrorKind::InjectedCrash => "injected_crash",
            TransportErrorKind::PeerLost => "peer_lost",
            TransportErrorKind::ResumeGap => "resume_gap",
        }
    }
}

/// A structured transport failure: everything a party report needs to say
/// where and how a distributed run died.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportError {
    /// The failure class.
    pub kind: TransportErrorKind,
    /// The party that observed the failure.
    pub party: usize,
    /// The peer involved, when the failure is tied to one link.
    pub peer: Option<usize>,
    /// Whether the send or receive half failed.
    pub direction: Option<Direction>,
    /// The protocol phase open when the failure surfaced
    /// ([`pivot_trace::current_phase`], tracked even with tracing off).
    pub phase: String,
    /// How long the failing operation waited before giving up.
    pub elapsed: Duration,
    /// Backend-specific detail (the underlying [`crate::LinkError`] or
    /// fault-plan text).
    pub detail: String,
    /// For [`TransportErrorKind::ResumeGap`]: the first sequence number
    /// the retransmit ring could not replay.
    pub missing_seq: Option<u64>,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "party {} transport failure ({})",
            self.party,
            self.kind.as_str()
        )?;
        if let Some(peer) = self.peer {
            write!(f, " peer {peer}")?;
        }
        if let Some(dir) = self.direction {
            write!(f, " during {}", dir.as_str())?;
        }
        write!(
            f,
            " in phase {} after {:?}: {}",
            self.phase, self.elapsed, self.detail
        )
    }
}

impl std::error::Error for TransportError {}

impl TransportError {
    /// Build an error observed by `party`, stamping the current protocol
    /// phase from the trace phase stack.
    pub fn new(
        kind: TransportErrorKind,
        party: usize,
        detail: impl Into<String>,
    ) -> TransportError {
        TransportError {
            kind,
            party,
            peer: None,
            direction: None,
            phase: pivot_trace::current_phase().to_string(),
            elapsed: Duration::ZERO,
            detail: detail.into(),
            missing_seq: None,
        }
    }

    /// Attach the first unreplayable sequence number of a resume gap.
    pub fn with_missing_seq(mut self, seq: u64) -> TransportError {
        self.missing_seq = Some(seq);
        self
    }

    /// Attach the peer and direction of the failing link operation.
    pub fn on_link(mut self, peer: usize, direction: Direction) -> TransportError {
        self.peer = Some(peer);
        self.direction = Some(direction);
        self
    }

    /// Attach how long the failing operation waited.
    pub fn after(mut self, elapsed: Duration) -> TransportError {
        self.elapsed = elapsed;
        self
    }

    /// Raise this error as a typed unwind toward the nearest
    /// [`catch_transport`]. Installs the quiet panic hook first so the
    /// controlled unwind does not spray the default "panicked at" report
    /// over stderr.
    pub fn raise(self) -> ! {
        install_quiet_hook();
        std::panic::panic_any(self)
    }
}

/// A typed *protocol-level* failure: the transport delivered the bytes,
/// but what they claim about the computation is wrong. Raised by the
/// verification plane when a Σ-protocol proof fails to verify; unlike a
/// [`TransportError`], it names the party whose *proof* was rejected —
/// the accused cheater — not (only) the party that observed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A zero-knowledge proof failed verification: `party` is the prover
    /// being accused, `observer` is the verifying party raising the
    /// error.
    ProofRejected {
        /// The prover whose proof did not verify — the accused cheater.
        party: usize,
        /// The verifying party that observed the rejection.
        observer: usize,
        /// The protocol phase the proof belongs to.
        phase: String,
        /// Which Σ-protocol failed (`popk` / `popcm` / `pohdp`).
        proof_kind: String,
        /// What exactly was rejected (proof index, commit point).
        detail: String,
    },
}

impl ProtocolError {
    /// The accused party.
    pub fn party(&self) -> usize {
        match self {
            ProtocolError::ProofRejected { party, .. } => *party,
        }
    }

    /// The protocol phase the failure belongs to.
    pub fn phase(&self) -> &str {
        match self {
            ProtocolError::ProofRejected { phase, .. } => phase,
        }
    }

    /// Raise as a typed unwind toward the nearest [`catch_failures`].
    pub fn raise(self) -> ! {
        install_quiet_hook();
        std::panic::panic_any(self)
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::ProofRejected {
                party,
                observer,
                phase,
                proof_kind,
                detail,
            } => write!(
                f,
                "party {party} proof rejected ({proof_kind}) in phase {phase}, \
                 observed by party {observer}: {detail}"
            ),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Either kind of typed run-ending failure a party can raise: the
/// transport broke, or the protocol content did not verify.
#[derive(Debug, Clone, PartialEq)]
pub enum RunFailure {
    Transport(TransportError),
    Protocol(ProtocolError),
}

impl RunFailure {
    /// The party a report should blame: the observer for transport
    /// failures, the *accused prover* for protocol failures.
    pub fn blamed_party(&self) -> usize {
        match self {
            RunFailure::Transport(e) => e.party,
            RunFailure::Protocol(e) => e.party(),
        }
    }
}

impl fmt::Display for RunFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunFailure::Transport(e) => e.fmt(f),
            RunFailure::Protocol(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for RunFailure {}

impl From<TransportError> for RunFailure {
    fn from(e: TransportError) -> Self {
        RunFailure::Transport(e)
    }
}

impl From<ProtocolError> for RunFailure {
    fn from(e: ProtocolError) -> Self {
        RunFailure::Protocol(e)
    }
}

/// Run `f`, converting a raised [`TransportError`] into `Err`. Any other
/// unwind (assertion failures, index panics — real bugs) resumes
/// untouched.
pub fn catch_transport<T>(f: impl FnOnce() -> T) -> Result<T, TransportError> {
    install_quiet_hook();
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => match payload.downcast::<TransportError>() {
            Ok(err) => Err(*err),
            Err(payload) => resume_unwind(payload),
        },
    }
}

/// Run `f`, converting a raised [`TransportError`] *or*
/// [`ProtocolError`] into `Err(RunFailure)`. Any other unwind keeps
/// unwinding — real bugs still abort loudly.
pub fn catch_failures<T>(f: impl FnOnce() -> T) -> Result<T, RunFailure> {
    install_quiet_hook();
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => match payload.downcast::<TransportError>() {
            Ok(err) => Err(RunFailure::Transport(*err)),
            Err(payload) => match payload.downcast::<ProtocolError>() {
                Ok(err) => Err(RunFailure::Protocol(*err)),
                Err(payload) => resume_unwind(payload),
            },
        },
    }
}

/// Wrap the process panic hook once so `TransportError` unwinds travel
/// silently (they are data, reported by whoever catches them); every
/// other panic goes to the previously installed hook unchanged.
fn install_quiet_hook() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let typed = info.payload().downcast_ref::<TransportError>().is_some()
                || info.payload().downcast_ref::<ProtocolError>().is_some();
            if !typed {
                previous(info);
            }
        }));
    });
}

/// Extract the human-readable message from a caught panic payload
/// (`&str` / `String` from `panic!`, [`TransportError`] from a typed
/// raise, opaque otherwise). This is what lets the SPMD harness
/// re-surface the *original* failure text instead of `party N panicked`.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(e) = payload.downcast_ref::<TransportError>() {
        e.to_string()
    } else if let Some(e) = payload.downcast_ref::<ProtocolError>() {
        e.to_string()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catch_returns_the_raised_error() {
        let err = catch_transport(|| {
            TransportError::new(TransportErrorKind::Timeout, 1, "no message within 5ms")
                .on_link(0, Direction::Recv)
                .after(Duration::from_millis(5))
                .raise();
        })
        .expect_err("raise must surface as Err");
        assert_eq!(err.kind, TransportErrorKind::Timeout);
        assert_eq!(err.party, 1);
        assert_eq!(err.peer, Some(0));
        assert_eq!(err.direction, Some(Direction::Recv));
        assert_eq!(err.elapsed, Duration::from_millis(5));
        let text = err.to_string();
        assert!(text.contains("party 1"), "{text}");
        assert!(text.contains("timeout"), "{text}");
        assert!(text.contains("peer 0"), "{text}");
        assert!(text.contains("recv"), "{text}");
    }

    #[test]
    fn catch_passes_ok_values_through() {
        assert_eq!(catch_transport(|| 7u32), Ok(7));
    }

    #[test]
    fn foreign_panics_keep_unwinding() {
        let outer = std::panic::catch_unwind(|| catch_transport(|| panic!("real bug")));
        let payload = outer.expect_err("foreign panic must resume");
        assert_eq!(panic_message(payload.as_ref()), "real bug");
    }

    #[test]
    fn error_stamps_current_phase() {
        let err = {
            let _g = pivot_trace::phase_span("gain");
            TransportError::new(TransportErrorKind::Disconnected, 0, "peer gone")
        };
        assert_eq!(err.phase, "gain");
    }

    #[test]
    fn catch_failures_surfaces_both_error_kinds() {
        let err = catch_failures(|| {
            ProtocolError::ProofRejected {
                party: 2,
                observer: 0,
                phase: "stats".to_string(),
                proof_kind: "pohdp".to_string(),
                detail: "split 3, proof 1 of 4".to_string(),
            }
            .raise();
        })
        .expect_err("raise must surface as Err");
        let RunFailure::Protocol(p) = &err else {
            panic!("expected protocol failure, got {err:?}");
        };
        assert_eq!(p.party(), 2);
        assert_eq!(p.phase(), "stats");
        assert_eq!(err.blamed_party(), 2);
        let text = err.to_string();
        assert!(text.contains("party 2 proof rejected (pohdp)"), "{text}");
        assert!(text.contains("observed by party 0"), "{text}");

        let err = catch_failures(|| {
            TransportError::new(TransportErrorKind::Timeout, 1, "wedged").raise();
        })
        .expect_err("transport raise must surface too");
        assert!(matches!(&err, RunFailure::Transport(t) if t.party == 1));
        assert_eq!(err.blamed_party(), 1);
    }

    #[test]
    fn catch_failures_lets_real_bugs_unwind() {
        let outer = std::panic::catch_unwind(|| catch_failures(|| panic!("real bug")));
        let payload = outer.expect_err("foreign panic must resume");
        assert_eq!(panic_message(payload.as_ref()), "real bug");
    }

    #[test]
    fn panic_message_extracts_all_payload_shapes() {
        let p: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(p.as_ref()), "static str");
        let p: Box<dyn std::any::Any + Send> = Box::new("owned".to_string());
        assert_eq!(panic_message(p.as_ref()), "owned");
        let p: Box<dyn std::any::Any + Send> = Box::new(42u64);
        assert_eq!(panic_message(p.as_ref()), "opaque panic payload");
    }
}
