//! Endpoints and the in-process network.

use crate::stats::NetStats;
use crate::wire::Wire;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::Arc;
use std::time::Duration;

/// How long a blocking receive waits before declaring the protocol wedged.
const RECV_TIMEOUT: Duration = Duration::from_secs(120);

/// Optional LAN simulation: `(per-message latency, seconds per byte)`.
///
/// The in-process channels are orders of magnitude faster than the paper's
/// LAN cluster; benchmarks that care about wall-clock *shape* (Figure 5's
/// Pivot-vs-SPDZ-DT comparison hinges on communication being expensive)
/// enable this via the environment:
/// `PIVOT_NET_LATENCY_US` (default 0) and `PIVOT_NET_BANDWIDTH_MBPS`
/// (default unlimited). Read once per process.
fn lan_simulation() -> (Duration, f64) {
    use std::sync::OnceLock;
    static CONF: OnceLock<(Duration, f64)> = OnceLock::new();
    *CONF.get_or_init(|| {
        let latency_us: u64 = std::env::var("PIVOT_NET_LATENCY_US")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let mbps: f64 = std::env::var("PIVOT_NET_BANDWIDTH_MBPS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(f64::INFINITY);
        let secs_per_byte = if mbps.is_finite() && mbps > 0.0 {
            8.0 / (mbps * 1e6)
        } else {
            0.0
        };
        (Duration::from_micros(latency_us), secs_per_byte)
    })
}

/// Charge the sender for one message under the simulated LAN.
fn charge_send(bytes: usize) {
    let (latency, secs_per_byte) = lan_simulation();
    if latency.is_zero() && secs_per_byte == 0.0 {
        return;
    }
    let wire_time = Duration::from_secs_f64(bytes as f64 * secs_per_byte);
    std::thread::sleep(latency + wire_time);
}

/// A fully connected `m`-party network. Construct once, then hand one
/// [`Endpoint`] to each party thread.
pub struct Network {
    endpoints: Vec<Endpoint>,
}

/// One party's connection to all peers.
pub struct Endpoint {
    id: usize,
    m: usize,
    /// `senders[j]` delivers to party `j` (entry `id` is unused).
    senders: Vec<Sender<Vec<u8>>>,
    /// `receivers[j]` yields messages from party `j` (entry `id` is unused).
    receivers: Vec<Receiver<Vec<u8>>>,
    stats: Arc<NetStats>,
}

impl Network {
    /// Create a fully connected network of `m` parties.
    pub fn new(m: usize) -> Network {
        assert!(m >= 1, "network needs at least one party");
        // channels[from][to]
        let mut txs: Vec<Vec<Option<Sender<Vec<u8>>>>> =
            (0..m).map(|_| (0..m).map(|_| None).collect()).collect();
        let mut rxs: Vec<Vec<Option<Receiver<Vec<u8>>>>> =
            (0..m).map(|_| (0..m).map(|_| None).collect()).collect();
        for from in 0..m {
            for to in 0..m {
                if from == to {
                    continue;
                }
                let (tx, rx) = unbounded();
                txs[from][to] = Some(tx);
                rxs[to][from] = Some(rx);
            }
        }
        let endpoints = (0..m)
            .map(|id| {
                let senders = txs[id]
                    .iter_mut()
                    .map(|s| s.take().unwrap_or_else(|| unbounded().0))
                    .collect();
                let receivers = rxs[id]
                    .iter_mut()
                    .map(|r| r.take().unwrap_or_else(|| unbounded().1))
                    .collect();
                Endpoint {
                    id,
                    m,
                    senders,
                    receivers,
                    stats: NetStats::new(),
                }
            })
            .collect();
        Network { endpoints }
    }

    /// Take the endpoints (one per party, in id order).
    pub fn into_endpoints(self) -> Vec<Endpoint> {
        self.endpoints
    }
}

impl Endpoint {
    /// This party's id in `0..m`.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of parties.
    pub fn parties(&self) -> usize {
        self.m
    }

    /// Traffic counters for this endpoint.
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// Send a message to party `to`.
    pub fn send<T: Wire>(&self, to: usize, msg: &T) {
        assert!(to != self.id, "party {to} sending to itself");
        let bytes = msg.to_wire();
        self.stats.record_send(bytes.len());
        charge_send(bytes.len());
        self.senders[to]
            .send(bytes)
            .unwrap_or_else(|_| panic!("party {to} hung up (send from {})", self.id));
    }

    /// Blocking receive of one message from party `from`.
    pub fn recv<T: Wire>(&self, from: usize) -> T {
        assert!(from != self.id, "party {} receiving from itself", self.id);
        let bytes = self.receivers[from]
            .recv_timeout(RECV_TIMEOUT)
            .unwrap_or_else(|e| {
                panic!("party {} timed out waiting for party {from}: {e}", self.id)
            });
        self.stats.record_recv(bytes.len());
        T::from_wire(&bytes)
            .unwrap_or_else(|e| panic!("party {} got malformed message from {from}: {e}", self.id))
    }

    /// Send `msg` to every other party.
    pub fn broadcast<T: Wire>(&self, msg: &T) {
        let bytes = msg.to_wire();
        for to in 0..self.m {
            if to == self.id {
                continue;
            }
            self.stats.record_send(bytes.len());
            charge_send(bytes.len());
            self.senders[to]
                .send(bytes.clone())
                .unwrap_or_else(|_| panic!("party {to} hung up (broadcast from {})", self.id));
        }
    }

    /// All-to-all exchange: every party broadcasts `msg` and receives one
    /// value from each peer. Returns the vector indexed by party id (own
    /// value included at `self.id()`).
    pub fn exchange_all<T: Wire + Clone>(&self, msg: &T) -> Vec<T> {
        self.broadcast(msg);
        (0..self.m)
            .map(|from| {
                if from == self.id {
                    msg.clone()
                } else {
                    self.recv(from)
                }
            })
            .collect()
    }

    /// Gather at party `at`: everyone sends `msg` to `at`; `at` returns the
    /// full vector (indexed by party id), the rest return `None`.
    pub fn gather<T: Wire + Clone>(&self, at: usize, msg: &T) -> Option<Vec<T>> {
        if self.id == at {
            Some(
                (0..self.m)
                    .map(|from| {
                        if from == at {
                            msg.clone()
                        } else {
                            self.recv(from)
                        }
                    })
                    .collect(),
            )
        } else {
            self.send(at, msg);
            None
        }
    }

    /// Scatter from party `root`: the root provides one value per party and
    /// each party receives its own (the root keeps element `root`).
    pub fn scatter<T: Wire + Clone>(&self, root: usize, values: Option<&[T]>) -> T {
        if self.id == root {
            let values = values.expect("root must supply scatter values");
            assert_eq!(values.len(), self.m, "scatter needs one value per party");
            for (to, v) in values.iter().enumerate() {
                if to != root {
                    self.send(to, v);
                }
            }
            values[root].clone()
        } else {
            self.recv(root)
        }
    }

    /// Broadcast from a single designated `root`: root sends, others receive.
    pub fn broadcast_from<T: Wire + Clone>(&self, root: usize, msg: Option<&T>) -> T {
        if self.id == root {
            let msg = msg.expect("root must supply the broadcast value");
            self.broadcast(msg);
            msg.clone()
        } else {
            self.recv(root)
        }
    }
}

/// Run an SPMD closure on `m` threads, one per party, and collect the
/// results in party order. This mirrors the paper's "one process per client"
/// deployment.
pub fn run_parties<T, F>(m: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Endpoint) -> T + Send + Sync,
{
    let endpoints = Network::new(m).into_endpoints();
    let mut slots: Vec<Option<T>> = (0..m).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(m);
        for ep in endpoints {
            let f = &f;
            handles.push(scope.spawn(move || f(ep)));
        }
        for (i, h) in handles.into_iter().enumerate() {
            slots[i] = Some(h.join().unwrap_or_else(|_| panic!("party {i} panicked")));
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("all parties joined"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point() {
        let results = run_parties(2, |ep| {
            if ep.id() == 0 {
                ep.send(1, &42u64);
                0u64
            } else {
                ep.recv::<u64>(0)
            }
        });
        assert_eq!(results, vec![0, 42]);
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let results = run_parties(4, |ep| {
            if ep.id() == 0 {
                ep.broadcast(&"hello".to_string());
                "root".to_string()
            } else {
                ep.recv::<String>(0)
            }
        });
        assert_eq!(results[1], "hello");
        assert_eq!(results[3], "hello");
    }

    #[test]
    fn exchange_all_collects_in_order() {
        let results = run_parties(3, |ep| ep.exchange_all(&(ep.id() as u64 * 10)));
        for r in results {
            assert_eq!(r, vec![0, 10, 20]);
        }
    }

    #[test]
    fn gather_only_root_sees_values() {
        let results = run_parties(3, |ep| ep.gather(1, &(ep.id() as u64)));
        assert!(results[0].is_none());
        assert_eq!(results[1], Some(vec![0, 1, 2]));
        assert!(results[2].is_none());
    }

    #[test]
    fn scatter_distributes_values() {
        let results = run_parties(3, |ep| {
            let vals = if ep.id() == 0 {
                Some(vec![100u64, 200, 300])
            } else {
                None
            };
            ep.scatter(0, vals.as_deref())
        });
        assert_eq!(results, vec![100, 200, 300]);
    }

    #[test]
    fn broadcast_from_root_round() {
        let results = run_parties(3, |ep| {
            let msg = if ep.id() == 2 { Some(7u64) } else { None };
            ep.broadcast_from(2, msg.as_ref())
        });
        assert_eq!(results, vec![7, 7, 7]);
    }

    #[test]
    fn stats_count_bytes() {
        let results = run_parties(2, |ep| {
            if ep.id() == 0 {
                ep.send(1, &vec![1u64, 2, 3]);
                ep.stats().bytes_sent()
            } else {
                let _: Vec<u64> = ep.recv(0);
                ep.stats().bytes_received()
            }
        });
        // 8 (length) + 3*8 (elements) = 32 bytes.
        assert_eq!(results, vec![32, 32]);
    }

    #[test]
    fn many_messages_in_flight() {
        let results = run_parties(2, |ep| {
            if ep.id() == 0 {
                for i in 0..1000u64 {
                    ep.send(1, &i);
                }
                0
            } else {
                (0..1000).map(|_| ep.recv::<u64>(0)).sum::<u64>()
            }
        });
        assert_eq!(results[1], 499_500);
    }
}
