//! The backend-agnostic endpoint and the in-process network.
//!
//! [`Endpoint`] implements every collective the protocols use — `send`,
//! `recv`, `broadcast`, `exchange_all`, `gather`, `scatter`,
//! `broadcast_from` — plus [`NetStats`] accounting and LAN simulation,
//! over a vector of boxed [`Link`]s. Which backend the links use
//! (in-process channels, TCP sockets) is invisible above this layer, so
//! byte counts and protocol behaviour are identical across deployments.

use crate::config::NetConfig;
use crate::error::{
    catch_failures, panic_message, Direction, RunFailure, TransportError, TransportErrorKind,
};
use crate::fault::FaultInjector;
use crate::link::{ChannelLink, Link, LinkError};
use crate::stats::NetStats;
use crate::wire::{decode_envelope, encode_envelope, Wire};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A fully connected `m`-party in-process network. Construct once, then
/// hand one [`Endpoint`] to each party thread.
pub struct Network {
    endpoints: Vec<Endpoint>,
}

/// One party's connection to all peers: `m - 1` links plus traffic
/// accounting and the per-endpoint [`NetConfig`].
///
/// # Frame coalescing
///
/// With [`Endpoint::set_coalescing`] on, sends are *staged* per peer
/// instead of hitting the link immediately, and every staged batch
/// travels as one envelope frame ([`crate::wire::encode_envelope`]) — so
/// the k independent messages a protocol step queues for the same peer
/// cost one link round-trip (and one simulated-latency charge) instead
/// of k. Three rules keep this transparent to the SPMD protocols:
///
/// 1. **Flush before blocking.** Every receive first flushes all staged
///    frames to all peers. Any cross-party wait chain passes through a
///    receive, so no dependency cycle can form on staged data.
/// 2. **Exact member accounting.** Each staged message is counted in
///    [`NetStats`] (and attributed to the *calling* trace span) at stage
///    time, byte-for-byte as the non-coalesced path would; envelope
///    framing is accounted separately as overhead bytes with no message
///    count.
/// 3. **Symmetry.** Both sides of a link must agree on the mode before
///    protocol bytes flow: the receiver demuxes envelopes, a raw frame
///    would be misparsed. Callers flip the knob at the same protocol
///    point on every party (in practice: from shared run parameters,
///    before the first message).
pub struct Endpoint {
    id: usize,
    m: usize,
    /// `links[j]` reaches party `j`; entry `id` is `None`.
    links: Vec<Option<Box<dyn Link>>>,
    stats: Arc<NetStats>,
    net: NetConfig,
    /// Whether sends are staged and framed as envelopes.
    coalescing: AtomicBool,
    /// Outbound staging buffers, one per peer (unused slot `id`).
    staged: Vec<Mutex<Vec<Vec<u8>>>>,
    /// Inbound demux queues: member messages of already-received
    /// envelopes waiting for their `recv` call, one queue per peer.
    inbox: Vec<Mutex<VecDeque<Vec<u8>>>>,
    /// Scenario fault plan hook ([`Endpoint::set_fault_injector`]);
    /// `note_round` feeds it the deterministic round trigger.
    fault: OnceLock<Arc<FaultInjector>>,
    /// Checkpoint plane ([`Endpoint::enable_transcript`]): per-peer logs
    /// of every raw inbound link frame since genesis, plus replay queues
    /// preloaded from a checkpoint on `--resume`. `None` (the default)
    /// costs nothing and leaves the transcript byte-identical to builds
    /// that predate checkpointing.
    transcript: OnceLock<Vec<Mutex<PeerTranscript>>>,
}

/// One peer's inbound frame history for the checkpoint plane.
#[derive(Default)]
struct PeerTranscript {
    /// Every raw link frame consumed from this peer, in order, since
    /// genesis. Checkpoints serialize this log; its length is the durable
    /// delivery cursor presented in the restart handshake.
    log: Vec<Vec<u8>>,
    /// Frames loaded from a checkpoint, served before the live link so a
    /// restarted party re-executes deterministically up to the barrier.
    replay: VecDeque<Vec<u8>>,
}

impl Network {
    /// Create a fully connected in-process network of `m` parties with the
    /// deprecated environment-variable LAN simulation as fallback
    /// ([`NetConfig::from_env`]). Prefer [`Network::with_config`].
    pub fn new(m: usize) -> Network {
        Network::with_config(m, NetConfig::from_env())
    }

    /// Create a fully connected in-process network of `m` parties, every
    /// endpoint carrying a clone of `net`.
    pub fn with_config(m: usize, net: NetConfig) -> Network {
        assert!(m >= 1, "network needs at least one party");
        // links[party][peer]; the diagonal stays None — no self link.
        let mut links: Vec<Vec<Option<Box<dyn Link>>>> =
            (0..m).map(|_| (0..m).map(|_| None).collect()).collect();
        for a in 0..m {
            for b in a + 1..m {
                let (at_a, at_b) = ChannelLink::pair(a, b);
                links[a][b] = Some(Box::new(at_a));
                links[b][a] = Some(Box::new(at_b));
            }
        }
        let endpoints = links
            .into_iter()
            .enumerate()
            .map(|(id, links)| Endpoint::from_links(id, links, net.clone()))
            .collect();
        Network { endpoints }
    }

    /// Take the endpoints (one per party, in id order).
    pub fn into_endpoints(self) -> Vec<Endpoint> {
        self.endpoints
    }
}

impl Endpoint {
    /// Assemble an endpoint from explicit links. `links[j]` must be a link
    /// whose `peer()` is `j` for every `j != id`, and `links[id]` must be
    /// `None` — there is no self link (and no placeholder channel standing
    /// in for one).
    pub fn from_links(id: usize, links: Vec<Option<Box<dyn Link>>>, net: NetConfig) -> Endpoint {
        let m = links.len();
        assert!(id < m, "party id {id} out of range for {m} links");
        for (j, link) in links.iter().enumerate() {
            match link {
                None => assert_eq!(j, id, "missing link to party {j}"),
                Some(l) => {
                    assert_ne!(j, id, "party {id} must not hold a self link");
                    assert_eq!(l.peer(), j, "slot {j} holds a link to party {}", l.peer());
                }
            }
        }
        let stats = NetStats::new();
        for link in links.iter().flatten() {
            link.attach_stats(&stats);
        }
        Endpoint {
            id,
            m,
            links,
            stats,
            net,
            coalescing: AtomicBool::new(false),
            staged: (0..m).map(|_| Mutex::new(Vec::new())).collect(),
            inbox: (0..m).map(|_| Mutex::new(VecDeque::new())).collect(),
            fault: OnceLock::new(),
            transcript: OnceLock::new(),
        }
    }

    /// Switch on the checkpoint plane: from now on every raw inbound
    /// link frame is logged per peer (protocol state is a deterministic
    /// function of the seed and this inbound transcript, which is what
    /// makes checkpoint/restart bit-identical). Must be enabled before
    /// the first receive; idempotent.
    pub fn enable_transcript(&self) {
        let _ = self.transcript.set(
            (0..self.m)
                .map(|_| Mutex::new(PeerTranscript::default()))
                .collect(),
        );
    }

    /// Whether [`Endpoint::enable_transcript`] has been called.
    pub fn transcript_enabled(&self) -> bool {
        self.transcript.get().is_some()
    }

    /// Queue checkpointed frames from `from` to be served before the live
    /// link (restart resume). Requires the transcript plane enabled.
    pub fn preload_replay(&self, from: usize, frames: Vec<Vec<u8>>) {
        let t = self.transcript.get().expect("transcript not enabled");
        t[from]
            .lock()
            .expect("transcript poisoned")
            .replay
            .extend(frames);
    }

    /// Durable delivery cursor for `from`: how many raw link frames of
    /// that peer's stream this endpoint has consumed since genesis.
    /// Zero when the transcript plane is off.
    pub fn transcript_consumed(&self, from: usize) -> u64 {
        self.transcript
            .get()
            .map(|t| t[from].lock().expect("transcript poisoned").log.len() as u64)
            .unwrap_or(0)
    }

    /// Snapshot the full inbound frame log for `from` (checkpoint
    /// serialization). Empty when the transcript plane is off.
    pub fn transcript_frames(&self, from: usize) -> Vec<Vec<u8>> {
        self.transcript
            .get()
            .map(|t| t[from].lock().expect("transcript poisoned").log.clone())
            .unwrap_or_default()
    }

    /// Announce the just-written durable checkpoint to every peer (each
    /// link learns this endpoint's logged-consumed cursor for it), so
    /// barrier-aligned ring retention can roll forward. Best-effort.
    pub fn checkpoint_mark_all(&self) {
        for peer in 0..self.m {
            if peer == self.id {
                continue;
            }
            self.link(peer)
                .checkpoint_mark(self.transcript_consumed(peer));
        }
    }

    /// Pop the next replayed inbound frame for `from`, if any.
    fn replay_frame(&self, from: usize) -> Option<Vec<u8>> {
        let t = self.transcript.get()?;
        t[from]
            .lock()
            .expect("transcript poisoned")
            .replay
            .pop_front()
    }

    /// Append one consumed raw link frame to `from`'s transcript log.
    /// Replayed frames re-enter the log too, so a checkpoint taken after
    /// a resume still covers the stream from genesis.
    fn log_frame(&self, from: usize, bytes: &[u8]) {
        if let Some(t) = self.transcript.get() {
            t[from]
                .lock()
                .expect("transcript poisoned")
                .log
                .push(bytes.to_vec());
        }
    }

    /// Attach a scenario fault injector. Links carrying their own
    /// injector hook (TCP sessions, [`crate::fault::FaultyLink`]) handle
    /// link faults; the endpoint only drives the round trigger and
    /// `crash_party at_round` firings via [`Endpoint::note_round`].
    pub fn set_fault_injector(&self, injector: Arc<FaultInjector>) {
        let _ = self.fault.set(injector);
    }

    /// Notify the fault plan that one MPC communication round completed.
    /// Called by the MPC engine at its round-counter bumps; a no-op
    /// without an installed injector. Raises a typed
    /// [`TransportErrorKind::InjectedCrash`] when a `crash_party`
    /// fault's round trigger fires on this party.
    pub fn note_round(&self) {
        if let Some(injector) = self.fault.get() {
            if let Some(reason) = injector.note_round() {
                self.stats.record_fault_injected();
                TransportError::new(TransportErrorKind::InjectedCrash, self.id, reason).raise();
            }
        }
    }

    /// Map a failed link operation into a typed raise.
    fn raise_link_error(
        &self,
        peer: usize,
        direction: Direction,
        err: LinkError,
        elapsed: std::time::Duration,
    ) -> ! {
        let kind = match err {
            LinkError::Timeout(_) => TransportErrorKind::Timeout,
            LinkError::Disconnected(_) => TransportErrorKind::Disconnected,
            LinkError::Malformed(_) => TransportErrorKind::Malformed,
            LinkError::PeerLost { .. } => TransportErrorKind::PeerLost,
            LinkError::ResumeGap { .. } => TransportErrorKind::ResumeGap,
        };
        let mut typed = TransportError::new(kind, self.id, err.to_string())
            .on_link(peer, direction)
            .after(elapsed);
        if let LinkError::ResumeGap { missing_seq, .. } = err {
            typed = typed.with_missing_seq(missing_seq);
        }
        typed.raise()
    }

    /// This party's id in `0..m`.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of parties.
    pub fn parties(&self) -> usize {
        self.m
    }

    /// Traffic counters for this endpoint.
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// The network settings this endpoint operates under.
    pub fn net(&self) -> &NetConfig {
        &self.net
    }

    fn link(&self, to: usize) -> &dyn Link {
        assert!(
            to < self.m,
            "party {} addressing party {to} of {}",
            self.id,
            self.m
        );
        assert_ne!(to, self.id, "party {to} has no link to itself");
        self.links[to].as_deref().expect("validated in from_links")
    }

    /// Whether frame coalescing is active.
    pub fn coalescing(&self) -> bool {
        self.coalescing.load(Ordering::Relaxed)
    }

    /// Switch frame coalescing on or off. Must be flipped at the same
    /// protocol point on every party (see the type-level docs); turning
    /// it off flushes anything still staged.
    pub fn set_coalescing(&self, on: bool) {
        if !on && self.coalescing() {
            self.flush();
        }
        self.coalescing.store(on, Ordering::Relaxed);
    }

    /// Push every staged frame onto its link, one envelope per peer.
    /// Called automatically before any blocking receive (rule 1 of the
    /// coalescing contract) and from `Drop`; call sites may also flush
    /// explicitly at phase boundaries, e.g. before reading [`NetStats`]
    /// snapshots.
    pub fn flush(&self) {
        self.flush_staged(false);
    }

    fn flush_staged(&self, best_effort: bool) {
        if !self.coalescing() {
            return;
        }
        for to in 0..self.m {
            if to == self.id {
                continue;
            }
            let staged = std::mem::take(&mut *self.staged[to].lock().expect("staging poisoned"));
            if staged.is_empty() {
                continue;
            }
            let frame = encode_envelope(&staged);
            let overhead = frame.len() - staged.iter().map(Vec::len).sum::<usize>();
            self.stats.record_send_overhead(overhead);
            pivot_trace::add_sent(overhead as u64);
            // One latency charge for the whole envelope — this is the
            // round-trip the coalescing saves over per-message sends.
            self.net.charge_send(frame.len());
            match self.link(to).send_bytes(frame) {
                Ok(()) => {}
                Err(_) if best_effort => {}
                Err(e) => self.raise_link_error(to, Direction::Send, e, std::time::Duration::ZERO),
            }
        }
    }

    /// Account + simulate + hand one encoded message to a link — or, in
    /// coalescing mode, stage it for the next flush. Stats and trace
    /// bytes are attributed here either way, so the message is charged
    /// to the protocol span that produced it, not to the flush site.
    fn push(&self, to: usize, bytes: Vec<u8>) {
        self.stats.record_send(bytes.len());
        pivot_trace::add_sent(bytes.len() as u64);
        if self.coalescing() {
            self.staged[to]
                .lock()
                .expect("staging poisoned")
                .push(bytes);
            return;
        }
        self.net.charge_send(bytes.len());
        if let Err(e) = self.link(to).send_bytes(bytes) {
            self.raise_link_error(to, Direction::Send, e, std::time::Duration::ZERO);
        }
    }

    /// Send a message to party `to`.
    pub fn send<T: Wire>(&self, to: usize, msg: &T) {
        self.push(to, msg.to_wire());
    }

    /// Receive the next raw payload from `from`, demuxing envelopes in
    /// coalescing mode. The blocking wait (if any) is what trace
    /// `wait_ns` measures — messages already demuxed into the inbox are
    /// free, which is exactly the latency hiding coalescing buys.
    fn recv_raw(&self, from: usize) -> Vec<u8> {
        if self.coalescing() {
            // Never block while holding our own unsent messages: a peer
            // may need them before it can produce what we wait for.
            self.flush_staged(false);
            if let Some(msg) = self.inbox[from].lock().expect("inbox poisoned").pop_front() {
                return msg;
            }
        }
        let start = std::time::Instant::now();
        let bytes = match self.replay_frame(from) {
            Some(bytes) => bytes,
            None => match self.link(from).recv_bytes(self.net.recv_timeout) {
                Ok(bytes) => bytes,
                Err(e) => self.raise_link_error(from, Direction::Recv, e, start.elapsed()),
            },
        };
        self.log_frame(from, &bytes);
        if pivot_trace::enabled() {
            pivot_trace::add_wait_ns(start.elapsed().as_nanos() as u64);
        }
        if !self.coalescing() {
            return bytes;
        }
        let mut msgs = match decode_envelope(&bytes) {
            Ok(msgs) if !msgs.is_empty() => msgs,
            Ok(_) => self.raise_link_error(
                from,
                Direction::Recv,
                LinkError::Malformed("empty envelope".into()),
                start.elapsed(),
            ),
            Err(e) => self.raise_link_error(
                from,
                Direction::Recv,
                LinkError::Malformed(format!(
                    "{e} (coalescing must be enabled symmetrically on all parties)"
                )),
                start.elapsed(),
            ),
        };
        let overhead = bytes.len() - msgs.iter().map(Vec::len).sum::<usize>();
        self.stats.record_recv_overhead(overhead);
        let first = msgs.remove(0);
        self.inbox[from]
            .lock()
            .expect("inbox poisoned")
            .extend(msgs);
        first
    }

    /// Blocking receive of one message from party `from`. If nothing
    /// arrives within the [`NetConfig::recv_timeout`] wedge deadline (or
    /// the bytes do not parse), raises a typed [`TransportError`] naming
    /// the pending peer, direction, and phase — catch it at the protocol
    /// boundary with [`crate::catch_transport`].
    pub fn recv<T: Wire>(&self, from: usize) -> T {
        let bytes = self.recv_raw(from);
        self.stats.record_recv(bytes.len());
        pivot_trace::add_recv(bytes.len() as u64);
        match T::from_wire(&bytes) {
            Ok(v) => v,
            Err(e) => self.raise_link_error(
                from,
                Direction::Recv,
                LinkError::Malformed(e.to_string()),
                std::time::Duration::ZERO,
            ),
        }
    }

    /// Send `msg` to every other party.
    pub fn broadcast<T: Wire>(&self, msg: &T) {
        let bytes = msg.to_wire();
        for to in 0..self.m {
            if to == self.id {
                continue;
            }
            self.push(to, bytes.clone());
        }
    }

    /// All-to-all exchange: every party broadcasts `msg` and receives one
    /// value from each peer. Returns the vector indexed by party id (own
    /// value included at `self.id()`).
    pub fn exchange_all<T: Wire + Clone>(&self, msg: &T) -> Vec<T> {
        self.broadcast(msg);
        (0..self.m)
            .map(|from| {
                if from == self.id {
                    msg.clone()
                } else {
                    self.recv(from)
                }
            })
            .collect()
    }

    /// Gather at party `at`: everyone sends `msg` to `at`; `at` returns the
    /// full vector (indexed by party id), the rest return `None`.
    pub fn gather<T: Wire + Clone>(&self, at: usize, msg: &T) -> Option<Vec<T>> {
        if self.id == at {
            Some(
                (0..self.m)
                    .map(|from| {
                        if from == at {
                            msg.clone()
                        } else {
                            self.recv(from)
                        }
                    })
                    .collect(),
            )
        } else {
            self.send(at, msg);
            None
        }
    }

    /// Scatter from party `root`: the root provides one value per party and
    /// each party receives its own (the root keeps element `root`).
    pub fn scatter<T: Wire + Clone>(&self, root: usize, values: Option<&[T]>) -> T {
        if self.id == root {
            let values = values.expect("root must supply scatter values");
            assert_eq!(values.len(), self.m, "scatter needs one value per party");
            for (to, v) in values.iter().enumerate() {
                if to != root {
                    self.send(to, v);
                }
            }
            values[root].clone()
        } else {
            self.recv(root)
        }
    }

    /// Broadcast from a single designated `root`: root sends, others receive.
    pub fn broadcast_from<T: Wire + Clone>(&self, root: usize, msg: Option<&T>) -> T {
        if self.id == root {
            let msg = msg.expect("root must supply the broadcast value");
            self.broadcast(msg);
            msg.clone()
        } else {
            self.recv(root)
        }
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        // End-of-run safety net: a party whose final protocol act is a
        // send (e.g. the last gather contribution) would otherwise strand
        // it in staging. Best-effort — peers may already be gone.
        self.flush_staged(true);
    }
}

/// Run an SPMD closure on `m` threads, one per party, and collect the
/// results in party order, with the deprecated environment-variable LAN
/// simulation as fallback. This mirrors the paper's "one process per
/// client" deployment at thread granularity; `pivot party` runs the same
/// closure shape across real processes over TCP.
pub fn run_parties<T, F>(m: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Endpoint) -> T + Send + Sync,
{
    run_parties_with(m, NetConfig::from_env(), f)
}

/// [`run_parties`] with an explicit per-run [`NetConfig`] — the form bench
/// sweeps use to vary network settings across runs within one process.
pub fn run_parties_with<T, F>(m: usize, net: NetConfig, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Endpoint) -> T + Send + Sync,
{
    run_parties_on(Network::with_config(m, net).into_endpoints(), f)
}

/// Run the SPMD closure over pre-built endpoints (one thread per
/// endpoint), panicking with every failed party's original payload if
/// any thread fails.
pub fn run_parties_on<T, F>(endpoints: Vec<Endpoint>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Endpoint) -> T + Send + Sync,
{
    let slots = endpoint_slots(endpoints);
    join_parties(slots.len(), |i| f(take_endpoint(&slots, i)))
}

/// Fault-tolerant SPMD harness: every party's outcome is collected — a
/// party that dies with a typed [`TransportError`] or
/// [`crate::ProtocolError`] yields `Err` in its slot instead of aborting
/// the whole run, so callers see *all* failures as data. Untyped panics
/// (real bugs) still abort, re-raised with every failing party's
/// original payload.
pub fn try_run_parties_with<T, F>(m: usize, net: NetConfig, f: F) -> Vec<Result<T, RunFailure>>
where
    T: Send,
    F: Fn(Endpoint) -> T + Send + Sync,
{
    try_run_parties_on(Network::with_config(m, net).into_endpoints(), f)
}

/// [`try_run_parties_with`] over pre-built endpoints (e.g. a faulty
/// network from [`crate::fault`]).
pub fn try_run_parties_on<T, F>(endpoints: Vec<Endpoint>, f: F) -> Vec<Result<T, RunFailure>>
where
    T: Send,
    F: Fn(Endpoint) -> T + Send + Sync,
{
    let slots = endpoint_slots(endpoints);
    join_parties(slots.len(), |i| {
        catch_failures(|| f(take_endpoint(&slots, i)))
    })
}

fn endpoint_slots(endpoints: Vec<Endpoint>) -> Vec<Mutex<Option<Endpoint>>> {
    endpoints
        .into_iter()
        .map(|ep| Mutex::new(Some(ep)))
        .collect()
}

fn take_endpoint(slots: &[Mutex<Option<Endpoint>>], i: usize) -> Endpoint {
    slots[i]
        .lock()
        .expect("endpoint slot poisoned")
        .take()
        .expect("each slot taken once")
}

/// Shared SPMD scaffolding: one thread per party running `run(i)`,
/// results collected in party order. A panicking party no longer masks
/// the rest: every thread is joined, and the harness re-panics with the
/// original payload message of *every* failed party, not just the lowest
/// index. Both the in-process backend and the loopback-TCP helper
/// ([`crate::tcp::run_parties_tcp`]) drive their threads through this
/// one definition.
pub(crate) fn join_parties<T, R>(m: usize, run: R) -> Vec<T>
where
    T: Send,
    R: Fn(usize) -> T + Send + Sync,
{
    let mut slots: Vec<Option<T>> = (0..m).map(|_| None).collect();
    let mut failures: Vec<String> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(m);
        for (i, slot) in slots.iter_mut().enumerate() {
            let run = &run;
            handles.push(scope.spawn(move || *slot = Some(run(i))));
        }
        for (i, h) in handles.into_iter().enumerate() {
            if let Err(payload) = h.join() {
                failures.push(format!("party {i} panicked: {}", panic_message(&*payload)));
            }
        }
    });
    if !failures.is_empty() {
        panic!("{}", failures.join("; "));
    }
    slots
        .into_iter()
        .map(|s| s.expect("all parties joined"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::catch_transport;
    use std::time::Duration;

    #[test]
    fn point_to_point() {
        let results = run_parties(2, |ep| {
            if ep.id() == 0 {
                ep.send(1, &42u64);
                0u64
            } else {
                ep.recv::<u64>(0)
            }
        });
        assert_eq!(results, vec![0, 42]);
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let results = run_parties(4, |ep| {
            if ep.id() == 0 {
                ep.broadcast(&"hello".to_string());
                "root".to_string()
            } else {
                ep.recv::<String>(0)
            }
        });
        assert_eq!(results[1], "hello");
        assert_eq!(results[3], "hello");
    }

    #[test]
    fn exchange_all_collects_in_order() {
        let results = run_parties(3, |ep| ep.exchange_all(&(ep.id() as u64 * 10)));
        for r in results {
            assert_eq!(r, vec![0, 10, 20]);
        }
    }

    #[test]
    fn gather_only_root_sees_values() {
        let results = run_parties(3, |ep| ep.gather(1, &(ep.id() as u64)));
        assert!(results[0].is_none());
        assert_eq!(results[1], Some(vec![0, 1, 2]));
        assert!(results[2].is_none());
    }

    #[test]
    fn scatter_distributes_values() {
        let results = run_parties(3, |ep| {
            let vals = if ep.id() == 0 {
                Some(vec![100u64, 200, 300])
            } else {
                None
            };
            ep.scatter(0, vals.as_deref())
        });
        assert_eq!(results, vec![100, 200, 300]);
    }

    #[test]
    fn broadcast_from_root_round() {
        let results = run_parties(3, |ep| {
            let msg = if ep.id() == 2 { Some(7u64) } else { None };
            ep.broadcast_from(2, msg.as_ref())
        });
        assert_eq!(results, vec![7, 7, 7]);
    }

    #[test]
    fn stats_count_bytes() {
        let results = run_parties(2, |ep| {
            if ep.id() == 0 {
                ep.send(1, &vec![1u64, 2, 3]);
                ep.stats().bytes_sent()
            } else {
                let _: Vec<u64> = ep.recv(0);
                ep.stats().bytes_received()
            }
        });
        // 8 (length) + 3*8 (elements) = 32 bytes.
        assert_eq!(results, vec![32, 32]);
    }

    #[test]
    fn many_messages_in_flight() {
        let results = run_parties(2, |ep| {
            if ep.id() == 0 {
                for i in 0..1000u64 {
                    ep.send(1, &i);
                }
                0
            } else {
                (0..1000).map(|_| ep.recv::<u64>(0)).sum::<u64>()
            }
        });
        assert_eq!(results[1], 499_500);
    }

    #[test]
    fn per_endpoint_latency_is_charged() {
        // 20 sends × 2 ms latency ⇒ at least 40 ms of simulated wire time,
        // configured per run rather than via process-global env vars.
        let net = NetConfig {
            latency: Duration::from_millis(2),
            ..NetConfig::default()
        };
        let start = std::time::Instant::now();
        run_parties_with(2, net, |ep| {
            if ep.id() == 0 {
                for i in 0..20u64 {
                    ep.send(1, &i);
                }
            } else {
                for _ in 0..20 {
                    let _: u64 = ep.recv(0);
                }
            }
        });
        assert!(
            start.elapsed() >= Duration::from_millis(40),
            "latency not charged: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn two_configs_coexist_in_one_process() {
        // The old OnceLock latched the first configuration forever; now a
        // sweep can build back-to-back networks with different settings.
        let timed = |net: NetConfig| {
            let start = std::time::Instant::now();
            run_parties_with(2, net, |ep| {
                if ep.id() == 0 {
                    for i in 0..10u64 {
                        ep.send(1, &i);
                    }
                } else {
                    for _ in 0..10 {
                        let _: u64 = ep.recv(0);
                    }
                }
            });
            start.elapsed()
        };
        let slow = timed(NetConfig {
            latency: Duration::from_millis(3),
            ..NetConfig::default()
        });
        let fast = timed(NetConfig::default());
        assert!(slow >= Duration::from_millis(30), "slow run {slow:?}");
        assert!(fast < slow, "fast {fast:?} vs slow {slow:?}");
    }

    #[test]
    fn wedge_raises_typed_error_naming_peer_and_direction() {
        let net = NetConfig {
            recv_timeout: Duration::from_millis(30),
            ..NetConfig::default()
        };
        let mut endpoints = Network::with_config(2, net).into_endpoints();
        let ep1 = endpoints.remove(1);
        let err = catch_transport(|| ep1.recv::<u64>(0)).expect_err("recv must fail on wedge");
        assert_eq!(err.kind, TransportErrorKind::Timeout);
        assert_eq!(err.party, 1);
        assert_eq!(err.peer, Some(0));
        assert_eq!(err.direction, Some(Direction::Recv));
        assert!(
            err.elapsed >= Duration::from_millis(30),
            "{:?}",
            err.elapsed
        );
        assert!(err.detail.contains("30ms"), "{}", err.detail);
    }

    #[test]
    fn dropped_peer_raises_typed_disconnect() {
        let mut endpoints = Network::with_config(2, NetConfig::default()).into_endpoints();
        let ep1 = endpoints.remove(1);
        drop(endpoints); // party 0's endpoint (and its channel halves) gone
        let err = catch_transport(|| ep1.recv::<u64>(0)).expect_err("recv must fail");
        assert_eq!(err.kind, TransportErrorKind::Disconnected);
        let err = catch_transport(|| ep1.send(0, &1u64)).expect_err("send must fail");
        assert_eq!(err.kind, TransportErrorKind::Disconnected);
        assert_eq!(err.direction, Some(Direction::Send));
    }

    #[test]
    fn malformed_payload_raises_typed_error_not_panic() {
        let endpoints = Network::with_config(2, NetConfig::default()).into_endpoints();
        let ep1 = &endpoints[1];
        endpoints[0].send(1, &7u8); // one byte: not a valid u64
        let err = catch_transport(|| ep1.recv::<u64>(0)).expect_err("decode must fail");
        assert_eq!(err.kind, TransportErrorKind::Malformed);
        assert_eq!(err.peer, Some(0));
    }

    #[test]
    fn join_reports_all_failed_parties_with_payloads() {
        let outcome = std::panic::catch_unwind(|| {
            run_parties(3, |ep| match ep.id() {
                0 => panic!("boom zero"),
                2 => panic!("boom two"),
                _ => (),
            })
        });
        let payload = outcome.expect_err("harness must propagate failures");
        let msg = panic_message(payload.as_ref());
        assert!(msg.contains("party 0 panicked: boom zero"), "{msg}");
        assert!(msg.contains("party 2 panicked: boom two"), "{msg}");
    }

    #[test]
    fn try_run_collects_every_party_outcome() {
        let net = NetConfig {
            recv_timeout: Duration::from_millis(50),
            ..NetConfig::default()
        };
        // Party 0 exits immediately; 1 and 2 wait on it and both fail —
        // and both failures surface, not just the lowest index.
        let results = try_run_parties_with(3, net, |ep| {
            if ep.id() == 0 {
                7u64
            } else {
                ep.recv::<u64>(0)
            }
        });
        assert_eq!(results[0], Ok(7));
        for (i, r) in results.iter().enumerate().skip(1) {
            let err = r.as_ref().expect_err("waiting parties must fail");
            let RunFailure::Transport(err) = err else {
                panic!("expected transport failure, got {err:?}");
            };
            assert_eq!(err.party, i);
            assert_eq!(err.peer, Some(0));
        }
    }

    /// Coalescing mode must be protocol-transparent: same results, same
    /// member byte/message counts, envelope overhead accounted on top.
    #[test]
    fn coalescing_preserves_results_and_member_accounting() {
        let run = |coalesce: bool| {
            run_parties(3, move |ep| {
                ep.set_coalescing(coalesce);
                // Several independent exchanges back-to-back, like the
                // opening bursts a batched protocol step issues.
                let a = ep.exchange_all(&(ep.id() as u64));
                let b = ep.exchange_all(&vec![ep.id() as u64; 4]);
                let sent = ep.stats().messages_sent();
                let recvd = ep.stats().messages_received();
                (a, b, sent, recvd)
            })
        };
        let plain = run(false);
        let coalesced = run(true);
        for (p, c) in plain.iter().zip(&coalesced) {
            assert_eq!(p.0, c.0);
            assert_eq!(p.1, c.1);
            // Member message counts identical across modes.
            assert_eq!(p.2, c.2);
            assert_eq!(p.3, c.3);
        }
    }

    #[test]
    fn coalescing_accounts_envelope_overhead_as_bytes_only() {
        let results = run_parties(2, |ep| {
            ep.set_coalescing(true);
            if ep.id() == 0 {
                ep.send(1, &1u64);
                ep.send(1, &2u64);
                ep.flush();
                (ep.stats().bytes_sent(), ep.stats().messages_sent())
            } else {
                let x: u64 = ep.recv(0);
                let y: u64 = ep.recv(0);
                assert_eq!((x, y), (1, 2));
                (ep.stats().bytes_received(), ep.stats().messages_received())
            }
        });
        // 2 member messages of 8 bytes + envelope header 8 + 2×8 len words.
        let expected_bytes = 16 + crate::wire::envelope_overhead(2) as u64;
        assert_eq!(results[0], (expected_bytes, 2));
        assert_eq!(results[1], (expected_bytes, 2));
    }

    #[test]
    fn coalescing_charges_latency_once_per_envelope() {
        // 10 messages to the same peer at 5 ms latency: per-message
        // charging would sleep ≥50 ms, one envelope sleeps ~5 ms.
        let net = NetConfig {
            latency: Duration::from_millis(5),
            ..NetConfig::default()
        };
        let start = std::time::Instant::now();
        run_parties_with(2, net, |ep| {
            ep.set_coalescing(true);
            if ep.id() == 0 {
                for i in 0..10u64 {
                    ep.send(1, &i);
                }
            } else {
                for want in 0..10u64 {
                    assert_eq!(ep.recv::<u64>(0), want);
                }
            }
        });
        assert!(
            start.elapsed() < Duration::from_millis(30),
            "coalesced burst took {:?}, envelope latency not merged",
            start.elapsed()
        );
    }

    #[test]
    fn coalescing_gather_then_scatter_does_not_deadlock() {
        // Root blocks on contributions that peers have only staged; the
        // flush-before-recv rule must release them.
        let results = run_parties(3, |ep| {
            ep.set_coalescing(true);
            let gathered = ep.gather(0, &(ep.id() as u64 + 1));
            let vals = gathered.map(|v| v.iter().map(|x| x * 10).collect::<Vec<u64>>());
            ep.scatter(0, vals.as_deref())
        });
        assert_eq!(results, vec![10, 20, 30]);
    }

    #[test]
    fn from_links_rejects_misrouted_links() {
        let (at_a, _at_b) = ChannelLink::pair(0, 1);
        // Slot 1 holding a link whose peer is 1 is fine...
        let ep = Endpoint::from_links(0, vec![None, Some(Box::new(at_a))], NetConfig::default());
        assert_eq!(ep.parties(), 2);
        // ...but a link in the wrong slot must be refused.
        let (at_a, _at_b) = ChannelLink::pair(0, 2);
        let misrouted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Endpoint::from_links(0, vec![None, Some(Box::new(at_a))], NetConfig::default())
        }));
        assert!(misrouted.is_err());
    }
}
