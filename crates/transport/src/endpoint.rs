//! The backend-agnostic endpoint and the in-process network.
//!
//! [`Endpoint`] implements every collective the protocols use — `send`,
//! `recv`, `broadcast`, `exchange_all`, `gather`, `scatter`,
//! `broadcast_from` — plus [`NetStats`] accounting and LAN simulation,
//! over a vector of boxed [`Link`]s. Which backend the links use
//! (in-process channels, TCP sockets) is invisible above this layer, so
//! byte counts and protocol behaviour are identical across deployments.

use crate::config::NetConfig;
use crate::link::{ChannelLink, Link};
use crate::stats::NetStats;
use crate::wire::Wire;
use std::sync::Arc;

/// A fully connected `m`-party in-process network. Construct once, then
/// hand one [`Endpoint`] to each party thread.
pub struct Network {
    endpoints: Vec<Endpoint>,
}

/// One party's connection to all peers: `m - 1` links plus traffic
/// accounting and the per-endpoint [`NetConfig`].
pub struct Endpoint {
    id: usize,
    m: usize,
    /// `links[j]` reaches party `j`; entry `id` is `None`.
    links: Vec<Option<Box<dyn Link>>>,
    stats: Arc<NetStats>,
    net: NetConfig,
}

impl Network {
    /// Create a fully connected in-process network of `m` parties with the
    /// deprecated environment-variable LAN simulation as fallback
    /// ([`NetConfig::from_env`]). Prefer [`Network::with_config`].
    pub fn new(m: usize) -> Network {
        Network::with_config(m, NetConfig::from_env())
    }

    /// Create a fully connected in-process network of `m` parties, every
    /// endpoint carrying a clone of `net`.
    pub fn with_config(m: usize, net: NetConfig) -> Network {
        assert!(m >= 1, "network needs at least one party");
        // links[party][peer]; the diagonal stays None — no self link.
        let mut links: Vec<Vec<Option<Box<dyn Link>>>> =
            (0..m).map(|_| (0..m).map(|_| None).collect()).collect();
        for a in 0..m {
            for b in a + 1..m {
                let (at_a, at_b) = ChannelLink::pair(a, b);
                links[a][b] = Some(Box::new(at_a));
                links[b][a] = Some(Box::new(at_b));
            }
        }
        let endpoints = links
            .into_iter()
            .enumerate()
            .map(|(id, links)| Endpoint::from_links(id, links, net.clone()))
            .collect();
        Network { endpoints }
    }

    /// Take the endpoints (one per party, in id order).
    pub fn into_endpoints(self) -> Vec<Endpoint> {
        self.endpoints
    }
}

impl Endpoint {
    /// Assemble an endpoint from explicit links. `links[j]` must be a link
    /// whose `peer()` is `j` for every `j != id`, and `links[id]` must be
    /// `None` — there is no self link (and no placeholder channel standing
    /// in for one).
    pub fn from_links(id: usize, links: Vec<Option<Box<dyn Link>>>, net: NetConfig) -> Endpoint {
        let m = links.len();
        assert!(id < m, "party id {id} out of range for {m} links");
        for (j, link) in links.iter().enumerate() {
            match link {
                None => assert_eq!(j, id, "missing link to party {j}"),
                Some(l) => {
                    assert_ne!(j, id, "party {id} must not hold a self link");
                    assert_eq!(l.peer(), j, "slot {j} holds a link to party {}", l.peer());
                }
            }
        }
        Endpoint {
            id,
            m,
            links,
            stats: NetStats::new(),
            net,
        }
    }

    /// This party's id in `0..m`.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of parties.
    pub fn parties(&self) -> usize {
        self.m
    }

    /// Traffic counters for this endpoint.
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// The network settings this endpoint operates under.
    pub fn net(&self) -> &NetConfig {
        &self.net
    }

    fn link(&self, to: usize) -> &dyn Link {
        assert!(
            to < self.m,
            "party {} addressing party {to} of {}",
            self.id,
            self.m
        );
        assert_ne!(to, self.id, "party {to} has no link to itself");
        self.links[to].as_deref().expect("validated in from_links")
    }

    /// Account + simulate + hand one encoded message to a link.
    fn push(&self, to: usize, bytes: Vec<u8>) {
        self.stats.record_send(bytes.len());
        pivot_trace::add_sent(bytes.len() as u64);
        self.net.charge_send(bytes.len());
        self.link(to)
            .send_bytes(bytes)
            .unwrap_or_else(|e| panic!("party {} wedged: send to party {to} failed: {e}", self.id));
    }

    /// Send a message to party `to`.
    pub fn send<T: Wire>(&self, to: usize, msg: &T) {
        self.push(to, msg.to_wire());
    }

    /// Blocking receive of one message from party `from`. Panics with the
    /// pending peer and direction if nothing arrives within the
    /// [`NetConfig::recv_timeout`] wedge deadline.
    pub fn recv<T: Wire>(&self, from: usize) -> T {
        // Only measure the blocking wait when a trace collector is live —
        // the `Instant` read stays off the untraced fast path.
        let waited = pivot_trace::enabled().then(std::time::Instant::now);
        let bytes = self
            .link(from)
            .recv_bytes(self.net.recv_timeout)
            .unwrap_or_else(|e| {
                panic!(
                    "party {} wedged: receive from party {from} failed: {e} \
                     (direction {from} -> {}, recv_timeout {:?})",
                    self.id, self.id, self.net.recv_timeout
                )
            });
        if let Some(start) = waited {
            pivot_trace::add_wait_ns(start.elapsed().as_nanos() as u64);
        }
        self.stats.record_recv(bytes.len());
        pivot_trace::add_recv(bytes.len() as u64);
        T::from_wire(&bytes)
            .unwrap_or_else(|e| panic!("party {} got malformed message from {from}: {e}", self.id))
    }

    /// Send `msg` to every other party.
    pub fn broadcast<T: Wire>(&self, msg: &T) {
        let bytes = msg.to_wire();
        for to in 0..self.m {
            if to == self.id {
                continue;
            }
            self.push(to, bytes.clone());
        }
    }

    /// All-to-all exchange: every party broadcasts `msg` and receives one
    /// value from each peer. Returns the vector indexed by party id (own
    /// value included at `self.id()`).
    pub fn exchange_all<T: Wire + Clone>(&self, msg: &T) -> Vec<T> {
        self.broadcast(msg);
        (0..self.m)
            .map(|from| {
                if from == self.id {
                    msg.clone()
                } else {
                    self.recv(from)
                }
            })
            .collect()
    }

    /// Gather at party `at`: everyone sends `msg` to `at`; `at` returns the
    /// full vector (indexed by party id), the rest return `None`.
    pub fn gather<T: Wire + Clone>(&self, at: usize, msg: &T) -> Option<Vec<T>> {
        if self.id == at {
            Some(
                (0..self.m)
                    .map(|from| {
                        if from == at {
                            msg.clone()
                        } else {
                            self.recv(from)
                        }
                    })
                    .collect(),
            )
        } else {
            self.send(at, msg);
            None
        }
    }

    /// Scatter from party `root`: the root provides one value per party and
    /// each party receives its own (the root keeps element `root`).
    pub fn scatter<T: Wire + Clone>(&self, root: usize, values: Option<&[T]>) -> T {
        if self.id == root {
            let values = values.expect("root must supply scatter values");
            assert_eq!(values.len(), self.m, "scatter needs one value per party");
            for (to, v) in values.iter().enumerate() {
                if to != root {
                    self.send(to, v);
                }
            }
            values[root].clone()
        } else {
            self.recv(root)
        }
    }

    /// Broadcast from a single designated `root`: root sends, others receive.
    pub fn broadcast_from<T: Wire + Clone>(&self, root: usize, msg: Option<&T>) -> T {
        if self.id == root {
            let msg = msg.expect("root must supply the broadcast value");
            self.broadcast(msg);
            msg.clone()
        } else {
            self.recv(root)
        }
    }
}

/// Run an SPMD closure on `m` threads, one per party, and collect the
/// results in party order, with the deprecated environment-variable LAN
/// simulation as fallback. This mirrors the paper's "one process per
/// client" deployment at thread granularity; `pivot party` runs the same
/// closure shape across real processes over TCP.
pub fn run_parties<T, F>(m: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Endpoint) -> T + Send + Sync,
{
    run_parties_with(m, NetConfig::from_env(), f)
}

/// [`run_parties`] with an explicit per-run [`NetConfig`] — the form bench
/// sweeps use to vary network settings across runs within one process.
pub fn run_parties_with<T, F>(m: usize, net: NetConfig, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Endpoint) -> T + Send + Sync,
{
    let endpoints: Vec<std::sync::Mutex<Option<Endpoint>>> = Network::with_config(m, net)
        .into_endpoints()
        .into_iter()
        .map(|ep| std::sync::Mutex::new(Some(ep)))
        .collect();
    join_parties(m, |i| {
        let ep = endpoints[i]
            .lock()
            .expect("endpoint slot poisoned")
            .take()
            .expect("each slot taken once");
        f(ep)
    })
}

/// Shared SPMD scaffolding: one thread per party running `run(i)`,
/// results collected in party order, with a `party N panicked` diagnostic
/// on failure. Both the in-process backend and the loopback-TCP helper
/// ([`crate::tcp::run_parties_tcp`]) drive their threads through this one
/// definition.
pub(crate) fn join_parties<T, R>(m: usize, run: R) -> Vec<T>
where
    T: Send,
    R: Fn(usize) -> T + Send + Sync,
{
    let mut slots: Vec<Option<T>> = (0..m).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(m);
        for (i, slot) in slots.iter_mut().enumerate() {
            let run = &run;
            handles.push(scope.spawn(move || *slot = Some(run(i))));
        }
        for (i, h) in handles.into_iter().enumerate() {
            h.join().unwrap_or_else(|_| panic!("party {i} panicked"));
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("all parties joined"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn point_to_point() {
        let results = run_parties(2, |ep| {
            if ep.id() == 0 {
                ep.send(1, &42u64);
                0u64
            } else {
                ep.recv::<u64>(0)
            }
        });
        assert_eq!(results, vec![0, 42]);
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let results = run_parties(4, |ep| {
            if ep.id() == 0 {
                ep.broadcast(&"hello".to_string());
                "root".to_string()
            } else {
                ep.recv::<String>(0)
            }
        });
        assert_eq!(results[1], "hello");
        assert_eq!(results[3], "hello");
    }

    #[test]
    fn exchange_all_collects_in_order() {
        let results = run_parties(3, |ep| ep.exchange_all(&(ep.id() as u64 * 10)));
        for r in results {
            assert_eq!(r, vec![0, 10, 20]);
        }
    }

    #[test]
    fn gather_only_root_sees_values() {
        let results = run_parties(3, |ep| ep.gather(1, &(ep.id() as u64)));
        assert!(results[0].is_none());
        assert_eq!(results[1], Some(vec![0, 1, 2]));
        assert!(results[2].is_none());
    }

    #[test]
    fn scatter_distributes_values() {
        let results = run_parties(3, |ep| {
            let vals = if ep.id() == 0 {
                Some(vec![100u64, 200, 300])
            } else {
                None
            };
            ep.scatter(0, vals.as_deref())
        });
        assert_eq!(results, vec![100, 200, 300]);
    }

    #[test]
    fn broadcast_from_root_round() {
        let results = run_parties(3, |ep| {
            let msg = if ep.id() == 2 { Some(7u64) } else { None };
            ep.broadcast_from(2, msg.as_ref())
        });
        assert_eq!(results, vec![7, 7, 7]);
    }

    #[test]
    fn stats_count_bytes() {
        let results = run_parties(2, |ep| {
            if ep.id() == 0 {
                ep.send(1, &vec![1u64, 2, 3]);
                ep.stats().bytes_sent()
            } else {
                let _: Vec<u64> = ep.recv(0);
                ep.stats().bytes_received()
            }
        });
        // 8 (length) + 3*8 (elements) = 32 bytes.
        assert_eq!(results, vec![32, 32]);
    }

    #[test]
    fn many_messages_in_flight() {
        let results = run_parties(2, |ep| {
            if ep.id() == 0 {
                for i in 0..1000u64 {
                    ep.send(1, &i);
                }
                0
            } else {
                (0..1000).map(|_| ep.recv::<u64>(0)).sum::<u64>()
            }
        });
        assert_eq!(results[1], 499_500);
    }

    #[test]
    fn per_endpoint_latency_is_charged() {
        // 20 sends × 2 ms latency ⇒ at least 40 ms of simulated wire time,
        // configured per run rather than via process-global env vars.
        let net = NetConfig {
            latency: Duration::from_millis(2),
            ..NetConfig::default()
        };
        let start = std::time::Instant::now();
        run_parties_with(2, net, |ep| {
            if ep.id() == 0 {
                for i in 0..20u64 {
                    ep.send(1, &i);
                }
            } else {
                for _ in 0..20 {
                    let _: u64 = ep.recv(0);
                }
            }
        });
        assert!(
            start.elapsed() >= Duration::from_millis(40),
            "latency not charged: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn two_configs_coexist_in_one_process() {
        // The old OnceLock latched the first configuration forever; now a
        // sweep can build back-to-back networks with different settings.
        let timed = |net: NetConfig| {
            let start = std::time::Instant::now();
            run_parties_with(2, net, |ep| {
                if ep.id() == 0 {
                    for i in 0..10u64 {
                        ep.send(1, &i);
                    }
                } else {
                    for _ in 0..10 {
                        let _: u64 = ep.recv(0);
                    }
                }
            });
            start.elapsed()
        };
        let slow = timed(NetConfig {
            latency: Duration::from_millis(3),
            ..NetConfig::default()
        });
        let fast = timed(NetConfig::default());
        assert!(slow >= Duration::from_millis(30), "slow run {slow:?}");
        assert!(fast < slow, "fast {fast:?} vs slow {slow:?}");
    }

    #[test]
    fn wedge_panic_names_pending_peer_and_direction() {
        let net = NetConfig {
            recv_timeout: Duration::from_millis(30),
            ..NetConfig::default()
        };
        let mut endpoints = Network::with_config(2, net).into_endpoints();
        let ep1 = endpoints.remove(1);
        let handle = std::thread::spawn(move || ep1.recv::<u64>(0));
        let payload = handle.join().expect_err("recv must panic on wedge");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic payload is a String");
        assert!(msg.contains("party 1 wedged"), "{msg}");
        assert!(msg.contains("receive from party 0"), "{msg}");
        assert!(msg.contains("direction 0 -> 1"), "{msg}");
        assert!(msg.contains("30ms"), "{msg}");
    }

    #[test]
    fn from_links_rejects_misrouted_links() {
        let (at_a, _at_b) = ChannelLink::pair(0, 1);
        // Slot 1 holding a link whose peer is 1 is fine...
        let ep = Endpoint::from_links(0, vec![None, Some(Box::new(at_a))], NetConfig::default());
        assert_eq!(ep.parties(), 2);
        // ...but a link in the wrong slot must be refused.
        let (at_a, _at_b) = ChannelLink::pair(0, 2);
        let misrouted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Endpoint::from_links(0, vec![None, Some(Box::new(at_a))], NetConfig::default())
        }));
        assert!(misrouted.is_err());
    }
}
