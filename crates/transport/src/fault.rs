//! Deterministic fault injection driven by a scenario `[faults]` plan.
//!
//! A plan is a seeded list of [`FaultSpec`]s parsed from strings like
//! `drop_link 0-1 at_round=8` — each names a fault kind, a target (a
//! link pair or a party), and a deterministic trigger (`at_round=N`,
//! counted by MPC engine round bumps, or `at_bytes=N`, counted over
//! payload bytes sent on the target link). Every spec fires at most
//! once.
//!
//! Injection points sit on the *protocol thread*, so the decision is a
//! pure function of protocol progress, not of writer-thread timing:
//!
//! - `drop_link`: the lower-id side of the pair tags its next frame on
//!   that link; the TCP session layer ring-buffers the frame *without
//!   writing it* and severs the socket — guaranteeing the resume
//!   handshake replays at least that frame. The in-process
//!   [`FaultyLink`] simulates the same observable outcome (outage span,
//!   reconnect/replay counters, then delivery).
//! - `delay_spike`: the lower-id sender sleeps `ms` before the frame.
//! - `crash_party`: the target party raises a typed
//!   [`TransportError`] with [`TransportErrorKind::InjectedCrash`] at
//!   the trigger point; peers observe a dead link and fail with their
//!   own typed errors within the recv-timeout + backoff budget.

use crate::config::NetConfig;
use crate::endpoint::Endpoint;
use crate::error::{TransportError, TransportErrorKind};
use crate::link::{ChannelLink, Link, LinkError};
use crate::stats::NetStats;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// What a fault does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Sever the `a`–`b` link once; the session layer must recover
    /// transparently (reconnect + replay).
    DropLink { a: usize, b: usize },
    /// Stall the lower-id sender on the `a`–`b` link for `delay` once.
    DelaySpike { a: usize, b: usize, delay: Duration },
    /// Kill party `party` with a typed `InjectedCrash` error.
    CrashParty { party: usize },
    /// SIGKILL party `party`'s *process* once it checkpoints the trigger
    /// level, then relaunch it with `--resume` after `restart_after`.
    /// Never armed in-process: only the `pivot party --supervise` parent
    /// interprets this spec (an OS kill cannot be simulated on threads).
    KillParty {
        party: usize,
        restart_after: Duration,
    },
}

/// When a fault fires (first opportunity at or after the threshold).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// After the party has passed `N` MPC communication rounds.
    AtRound(u64),
    /// After cumulative payload bytes sent on the target link reach `N`.
    AtBytes(u64),
    /// After the party has durably checkpointed tree level `L`
    /// (`kill_party` only; observed by the supervisor via checkpoint
    /// files, so it never fires through the in-process injector).
    AtLevel(u64),
}

/// One parsed fault: kind + trigger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    pub kind: FaultKind,
    pub trigger: FaultTrigger,
}

impl FaultSpec {
    /// Parse one plan entry. Grammar (whitespace-separated):
    ///
    /// ```text
    /// drop_link   <a>-<b> at_round=<N> | at_bytes=<N>
    /// delay_spike <a>-<b> at_round=<N> | at_bytes=<N> ms=<M>
    /// crash_party <p>     at_round=<N> | at_bytes=<N>
    /// kill_party  <p>     at_level=<L> restart_after_ms=<M>
    /// ```
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let mut tokens = s.split_whitespace();
        let kind_tok = tokens
            .next()
            .ok_or_else(|| "empty fault spec".to_string())?;
        let target = tokens
            .next()
            .ok_or_else(|| format!("fault `{s}`: missing target"))?;
        let mut trigger = None;
        let mut ms = None;
        let mut restart_after = None;
        for tok in tokens {
            if let Some(v) = tok.strip_prefix("at_round=") {
                let n = v
                    .parse::<u64>()
                    .map_err(|_| format!("fault `{s}`: bad at_round value `{v}`"))?;
                trigger = Some(FaultTrigger::AtRound(n));
            } else if let Some(v) = tok.strip_prefix("at_bytes=") {
                let n = v
                    .parse::<u64>()
                    .map_err(|_| format!("fault `{s}`: bad at_bytes value `{v}`"))?;
                trigger = Some(FaultTrigger::AtBytes(n));
            } else if let Some(v) = tok.strip_prefix("at_level=") {
                let n = v
                    .parse::<u64>()
                    .map_err(|_| format!("fault `{s}`: bad at_level value `{v}`"))?;
                trigger = Some(FaultTrigger::AtLevel(n));
            } else if let Some(v) = tok.strip_prefix("restart_after_ms=") {
                let n = v
                    .parse::<u64>()
                    .map_err(|_| format!("fault `{s}`: bad restart_after_ms value `{v}`"))?;
                restart_after = Some(Duration::from_millis(n));
            } else if let Some(v) = tok.strip_prefix("ms=") {
                let n = v
                    .parse::<u64>()
                    .map_err(|_| format!("fault `{s}`: bad ms value `{v}`"))?;
                ms = Some(Duration::from_millis(n));
            } else {
                return Err(format!("fault `{s}`: unknown token `{tok}`"));
            }
        }
        let trigger =
            trigger.ok_or_else(|| format!("fault `{s}`: needs at_round=N or at_bytes=N"))?;
        let parse_pair = |t: &str| -> Result<(usize, usize), String> {
            let (a, b) = t
                .split_once('-')
                .ok_or_else(|| format!("fault `{s}`: link target must be `a-b`, got `{t}`"))?;
            let a = a
                .parse::<usize>()
                .map_err(|_| format!("fault `{s}`: bad party id `{a}`"))?;
            let b = b
                .parse::<usize>()
                .map_err(|_| format!("fault `{s}`: bad party id `{b}`"))?;
            if a == b {
                return Err(format!("fault `{s}`: a link connects two distinct parties"));
            }
            Ok((a.min(b), a.max(b)))
        };
        let kind = match kind_tok {
            "drop_link" => {
                let (a, b) = parse_pair(target)?;
                FaultKind::DropLink { a, b }
            }
            "delay_spike" => {
                let (a, b) = parse_pair(target)?;
                let delay = ms.ok_or_else(|| format!("fault `{s}`: delay_spike needs ms=N"))?;
                FaultKind::DelaySpike { a, b, delay }
            }
            "crash_party" => {
                let party = target
                    .parse::<usize>()
                    .map_err(|_| format!("fault `{s}`: bad party id `{target}`"))?;
                FaultKind::CrashParty { party }
            }
            "kill_party" => {
                let party = target
                    .parse::<usize>()
                    .map_err(|_| format!("fault `{s}`: bad party id `{target}`"))?;
                let restart_after = restart_after
                    .ok_or_else(|| format!("fault `{s}`: kill_party needs restart_after_ms=M"))?;
                FaultKind::KillParty {
                    party,
                    restart_after,
                }
            }
            other => return Err(format!("fault `{s}`: unknown fault kind `{other}`")),
        };
        if ms.is_some() && !matches!(kind, FaultKind::DelaySpike { .. }) {
            return Err(format!("fault `{s}`: ms= only applies to delay_spike"));
        }
        if restart_after.is_some() && !matches!(kind, FaultKind::KillParty { .. }) {
            return Err(format!(
                "fault `{s}`: restart_after_ms= only applies to kill_party"
            ));
        }
        match (&kind, trigger) {
            (FaultKind::KillParty { .. }, FaultTrigger::AtLevel(_)) => {}
            (FaultKind::KillParty { .. }, _) => {
                return Err(format!("fault `{s}`: kill_party needs at_level=L"));
            }
            (_, FaultTrigger::AtLevel(_)) => {
                return Err(format!("fault `{s}`: at_level= only applies to kill_party"));
            }
            _ => {}
        }
        Ok(FaultSpec { kind, trigger })
    }
}

/// A parsed `[faults]` section: the specs plus the plan seed (used to
/// derandomize reconnect backoff jitter so chaos runs are repeatable).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    pub specs: Vec<FaultSpec>,
    pub seed: u64,
}

impl FaultPlan {
    /// Parse every plan entry; `seed` defaults to 0.
    pub fn parse(entries: &[String], seed: u64) -> Result<FaultPlan, String> {
        let specs = entries
            .iter()
            .map(|e| FaultSpec::parse(e))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FaultPlan { specs, seed })
    }

    /// Whether the plan does anything.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Whether the plan contains any `kill_party` spec. Process kills
    /// require one OS process per party plus a supervisor; in-process
    /// harnesses reject such plans up front.
    pub fn has_kill(&self) -> bool {
        self.specs
            .iter()
            .any(|s| matches!(s.kind, FaultKind::KillParty { .. }))
    }

    /// The supervisor-facing kill spec for `party`, if any:
    /// `(at_level, restart_after)`.
    pub fn kill_spec(&self, party: usize) -> Option<(u64, Duration)> {
        self.specs.iter().find_map(|s| match (&s.kind, s.trigger) {
            (
                FaultKind::KillParty {
                    party: p,
                    restart_after,
                },
                FaultTrigger::AtLevel(level),
            ) if *p == party => Some((level, *restart_after)),
            _ => None,
        })
    }
}

/// What the injector asks the sender to do for one outgoing frame.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct SendFault {
    /// Sleep this long before the frame.
    pub delay: Option<Duration>,
    /// Sever the connection instead of writing this frame (the session
    /// layer must recover it via replay).
    pub drop_link: bool,
    /// Raise an `InjectedCrash` carrying this description.
    pub crash: Option<String>,
}

struct Armed {
    spec: FaultSpec,
    fired: AtomicBool,
}

impl Armed {
    /// Fire-once latch.
    fn try_fire(&self) -> bool {
        !self.fired.swap(true, Ordering::Relaxed)
    }
}

/// One party's view of the fault plan: deterministic trigger state
/// (round counter, per-link byte counters) plus the armed specs this
/// party is responsible for injecting. Link faults are injected by the
/// *lower-id* side of the pair — the same side that owns reconnection —
/// so exactly one party acts per fault.
pub struct FaultInjector {
    party: usize,
    seed: u64,
    round: AtomicU64,
    sent_to: Vec<AtomicU64>,
    armed: Vec<Armed>,
}

impl FaultInjector {
    /// Build party `party`'s injector for an `m`-party run. Specs that
    /// this party does not inject are filtered out here.
    pub fn new(party: usize, m: usize, plan: &FaultPlan) -> Arc<FaultInjector> {
        let armed = plan
            .specs
            .iter()
            .filter(|spec| match spec.kind {
                FaultKind::DropLink { a, b } | FaultKind::DelaySpike { a, b, .. } => {
                    party == a.min(b) && a.max(b) < m
                }
                FaultKind::CrashParty { party: p } => p == party,
                // Supervisor-only: the in-process injector never arms it.
                FaultKind::KillParty { .. } => false,
            })
            .map(|spec| Armed {
                spec: spec.clone(),
                fired: AtomicBool::new(false),
            })
            .collect();
        Arc::new(FaultInjector {
            party,
            seed: plan.seed,
            round: AtomicU64::new(0),
            sent_to: (0..m).map(|_| AtomicU64::new(0)).collect(),
            armed,
        })
    }

    /// The plan seed (jitter derandomization).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The party this injector acts for.
    pub fn party(&self) -> usize {
        self.party
    }

    /// Called by the MPC engine at every communication-round bump.
    /// Returns the description of a `crash_party` fault that fires at
    /// this round boundary, if any.
    pub fn note_round(&self) -> Option<String> {
        let round = self.round.fetch_add(1, Ordering::Relaxed) + 1;
        for armed in &self.armed {
            if let FaultKind::CrashParty { party } = armed.spec.kind {
                if let FaultTrigger::AtRound(r) = armed.spec.trigger {
                    if round >= r && armed.try_fire() {
                        return Some(format!(
                            "crash_party {party} at_round={r} fired at round {round}"
                        ));
                    }
                }
            }
        }
        None
    }

    /// Called on the protocol thread for every frame about to go to
    /// `peer` (`len` payload bytes). Accumulates the deterministic byte
    /// trigger state and returns the actions of any fault firing now.
    pub fn on_send(&self, peer: usize, len: usize) -> SendFault {
        let total = self.sent_to[peer].fetch_add(len as u64, Ordering::Relaxed) + len as u64;
        let round = self.round.load(Ordering::Relaxed);
        let mut out = SendFault::default();
        for armed in &self.armed {
            let triggered = match armed.spec.trigger {
                FaultTrigger::AtRound(r) => round >= r,
                FaultTrigger::AtBytes(b) => total >= b,
                // Supervisor-only trigger; nothing with it is ever armed.
                FaultTrigger::AtLevel(_) => false,
            };
            if !triggered {
                continue;
            }
            match armed.spec.kind {
                FaultKind::DropLink { a, b } => {
                    if peer == a.max(b) && armed.try_fire() {
                        out.drop_link = true;
                    }
                }
                FaultKind::DelaySpike { a, b, delay } => {
                    if peer == a.max(b) && armed.try_fire() {
                        out.delay = Some(delay);
                    }
                }
                FaultKind::CrashParty { party } => {
                    // Round-triggered crashes fire from `note_round`;
                    // byte-triggered ones fire here on any link.
                    if matches!(armed.spec.trigger, FaultTrigger::AtBytes(_)) && armed.try_fire() {
                        out.crash = Some(format!(
                            "crash_party {party} {:?} fired after {total} bytes to peer {peer}",
                            armed.spec.trigger
                        ));
                    }
                }
                FaultKind::KillParty { .. } => unreachable!("kill_party is never armed in-process"),
            }
        }
        out
    }
}

/// In-process fault wrapper around a [`Link`]. Crash and delay faults
/// behave exactly as over TCP; a `drop_link` is *simulated* — channels
/// cannot actually sever — by recording the same observable outcome the
/// TCP session layer produces (a `reconnect` trace span, `reconnects`
/// and `replayed_frames` counters) and then delivering the frame, which
/// is precisely what a transparent reconnect+replay delivers.
pub struct FaultyLink {
    inner: Box<dyn Link>,
    injector: Arc<FaultInjector>,
    stats: OnceLock<Arc<NetStats>>,
}

impl FaultyLink {
    /// Wrap `inner` with `injector`'s plan.
    pub fn new(inner: Box<dyn Link>, injector: Arc<FaultInjector>) -> FaultyLink {
        FaultyLink {
            inner,
            injector,
            stats: OnceLock::new(),
        }
    }

    fn record(&self, f: impl Fn(&NetStats)) {
        if let Some(stats) = self.stats.get() {
            f(stats);
        }
    }
}

impl Link for FaultyLink {
    fn peer(&self) -> usize {
        self.inner.peer()
    }

    fn send_bytes(&self, bytes: Vec<u8>) -> Result<(), LinkError> {
        let fault = self.injector.on_send(self.peer(), bytes.len());
        if let Some(reason) = fault.crash {
            self.record(|s| s.record_fault_injected());
            TransportError::new(
                TransportErrorKind::InjectedCrash,
                self.injector.party(),
                reason,
            )
            .raise();
        }
        if let Some(delay) = fault.delay {
            self.record(|s| s.record_fault_injected());
            std::thread::sleep(delay);
        }
        if fault.drop_link {
            self.record(|s| {
                s.record_fault_injected();
                s.record_reconnect();
                s.record_replayed_frames(1);
            });
            // The outage window the TCP session layer would spend
            // redialing, visible as a reconnect span on this party.
            let _span = pivot_trace::phase_span("reconnect");
            std::thread::sleep(Duration::from_millis(2));
        }
        self.inner.send_bytes(bytes)
    }

    fn recv_bytes(&self, timeout: Duration) -> Result<Vec<u8>, LinkError> {
        self.inner.recv_bytes(timeout)
    }

    fn attach_stats(&self, stats: &Arc<NetStats>) {
        let _ = self.stats.set(Arc::clone(stats));
        self.inner.attach_stats(stats);
    }
}

/// Build an in-process `m`-party network with `plan` injected on every
/// link: the fault-plan equivalent of `Network::with_config(m,
/// net).into_endpoints()`. Each party gets its own [`FaultInjector`]
/// (wired into its links *and* its endpoint, so `at_round` triggers
/// fire), and every [`ChannelLink`] is wrapped in a [`FaultyLink`].
pub fn faulty_network(m: usize, net: NetConfig, plan: &FaultPlan) -> Vec<Endpoint> {
    let injectors: Vec<Arc<FaultInjector>> =
        (0..m).map(|p| FaultInjector::new(p, m, plan)).collect();
    let mut slots: Vec<Vec<Option<Box<dyn Link>>>> =
        (0..m).map(|_| (0..m).map(|_| None).collect()).collect();
    for a in 0..m {
        for b in (a + 1)..m {
            let (at_a, at_b) = ChannelLink::pair(a, b);
            slots[a][b] = Some(Box::new(FaultyLink::new(
                Box::new(at_a),
                Arc::clone(&injectors[a]),
            )));
            slots[b][a] = Some(Box::new(FaultyLink::new(
                Box::new(at_b),
                Arc::clone(&injectors[b]),
            )));
        }
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(id, links)| {
            let ep = Endpoint::from_links(id, links, net.clone());
            ep.set_fault_injector(Arc::clone(&injectors[id]));
            ep
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::try_run_parties_on;

    #[test]
    fn parses_every_fault_kind() {
        assert_eq!(
            FaultSpec::parse("drop_link 0-1 at_round=8").unwrap(),
            FaultSpec {
                kind: FaultKind::DropLink { a: 0, b: 1 },
                trigger: FaultTrigger::AtRound(8),
            }
        );
        assert_eq!(
            FaultSpec::parse("delay_spike 2-1 at_bytes=4096 ms=250").unwrap(),
            FaultSpec {
                kind: FaultKind::DelaySpike {
                    a: 1,
                    b: 2,
                    delay: Duration::from_millis(250),
                },
                trigger: FaultTrigger::AtBytes(4096),
            }
        );
        assert_eq!(
            FaultSpec::parse("crash_party 2 at_round=10").unwrap(),
            FaultSpec {
                kind: FaultKind::CrashParty { party: 2 },
                trigger: FaultTrigger::AtRound(10),
            }
        );
    }

    #[test]
    fn parses_and_gates_kill_party() {
        let spec = FaultSpec::parse("kill_party 1 at_level=2 restart_after_ms=500").unwrap();
        assert_eq!(
            spec,
            FaultSpec {
                kind: FaultKind::KillParty {
                    party: 1,
                    restart_after: Duration::from_millis(500),
                },
                trigger: FaultTrigger::AtLevel(2),
            }
        );
        for bad in [
            "kill_party 1 at_round=2 restart_after_ms=500",
            "kill_party 1 at_level=2",
            "drop_link 0-1 at_level=2",
            "crash_party 1 at_round=1 restart_after_ms=5",
        ] {
            assert!(FaultSpec::parse(bad).is_err(), "accepted `{bad}`");
        }
        let plan =
            FaultPlan::parse(&["kill_party 1 at_level=2 restart_after_ms=500".into()], 0).unwrap();
        assert!(plan.has_kill());
        assert_eq!(plan.kill_spec(1), Some((2, Duration::from_millis(500))));
        assert_eq!(plan.kill_spec(0), None);
        // Supervisor-only: the in-process injector never arms it.
        assert!(FaultInjector::new(1, 3, &plan).armed.is_empty());
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "drop_link",
            "drop_link 0-0 at_round=1",
            "drop_link 0-1",
            "drop_link 0-1 at_round=x",
            "drop_link 01 at_round=1",
            "delay_spike 0-1 at_round=1",
            "crash_party 1 at_round=1 ms=5",
            "meteor_strike 0-1 at_round=1",
            "drop_link 0-1 at_round=1 whenever",
        ] {
            assert!(FaultSpec::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn link_faults_arm_only_on_the_lower_id_side() {
        let plan = FaultPlan::parse(&["drop_link 1-2 at_round=3".into()], 0).unwrap();
        let at_0 = FaultInjector::new(0, 3, &plan);
        let at_1 = FaultInjector::new(1, 3, &plan);
        let at_2 = FaultInjector::new(2, 3, &plan);
        assert!(at_0.armed.is_empty());
        assert_eq!(at_1.armed.len(), 1);
        assert!(at_2.armed.is_empty());
    }

    #[test]
    fn round_trigger_fires_once_at_threshold() {
        let plan = FaultPlan::parse(&["drop_link 0-1 at_round=2".into()], 0).unwrap();
        let inj = FaultInjector::new(0, 2, &plan);
        assert_eq!(inj.on_send(1, 100), SendFault::default());
        assert!(inj.note_round().is_none());
        assert!(inj.note_round().is_none());
        // Round counter reached 2: next send on the link drops it.
        let fault = inj.on_send(1, 100);
        assert!(fault.drop_link);
        // Fire-once.
        assert_eq!(inj.on_send(1, 100), SendFault::default());
    }

    #[test]
    fn byte_trigger_counts_per_link() {
        let plan = FaultPlan::parse(&["delay_spike 0-2 at_bytes=300 ms=1".into()], 0).unwrap();
        let inj = FaultInjector::new(0, 3, &plan);
        // Traffic to peer 1 never triggers the 0-2 fault.
        assert_eq!(inj.on_send(1, 1000), SendFault::default());
        assert_eq!(inj.on_send(2, 200), SendFault::default());
        let fault = inj.on_send(2, 200);
        assert_eq!(fault.delay, Some(Duration::from_millis(1)));
    }

    #[test]
    fn crash_fires_at_round_boundary() {
        let plan = FaultPlan::parse(&["crash_party 1 at_round=2".into()], 7).unwrap();
        let inj = FaultInjector::new(1, 2, &plan);
        assert!(inj.note_round().is_none());
        let fired = inj.note_round().expect("crash at round 2");
        assert!(fired.contains("crash_party 1"), "{fired}");
        assert!(inj.note_round().is_none(), "fires once");
        assert_eq!(inj.seed(), 7);
    }

    #[test]
    fn in_process_drop_is_transparent_and_counted() {
        let plan = FaultPlan::parse(&["drop_link 0-1 at_bytes=1".into()], 3).unwrap();
        let eps = faulty_network(2, NetConfig::default(), &plan);
        let results = try_run_parties_on(eps, |ep| {
            if ep.id() == 0 {
                for i in 0..10u64 {
                    ep.send(1, &i);
                }
                let echoed: u64 = ep.recv(1);
                let stats = ep.stats();
                (
                    echoed,
                    stats.faults_injected(),
                    stats.reconnects(),
                    stats.replayed_frames(),
                )
            } else {
                let mut sum = 0u64;
                for _ in 0..10 {
                    sum += ep.recv::<u64>(0);
                }
                ep.send(0, &sum);
                (sum, 0, 0, 0)
            }
        });
        let (echoed, faults, reconnects, replayed) =
            *results[0].as_ref().expect("party 0 survives the drop");
        assert_eq!(echoed, 45);
        assert_eq!(results[1].as_ref().unwrap().0, 45);
        assert!(faults >= 1 && reconnects >= 1 && replayed >= 1);
    }

    #[test]
    fn crash_party_surfaces_typed_errors_everywhere() {
        let plan = FaultPlan::parse(&["crash_party 0 at_bytes=1".into()], 0).unwrap();
        // Short wedge timeout so the surviving party fails fast once the
        // crasher is gone.
        let net = NetConfig {
            recv_timeout: Duration::from_millis(300),
            ..NetConfig::default()
        };
        let eps = faulty_network(2, net, &plan);
        let results = try_run_parties_on(eps, |ep| {
            if ep.id() == 0 {
                ep.send(1, &1u64); // crashes here
            } else {
                let _: u64 = ep.recv(0);
                let _: u64 = ep.recv(0); // never arrives
            }
            ep.id()
        });
        let crate::RunFailure::Transport(crash) = results[0].as_ref().expect_err("party 0 crashes")
        else {
            panic!("expected transport failure");
        };
        assert_eq!(crash.kind, TransportErrorKind::InjectedCrash);
        assert_eq!(crash.party, 0);
        assert!(crash.detail.contains("crash_party 0"), "{}", crash.detail);
        let crate::RunFailure::Transport(survivor) =
            results[1].as_ref().expect_err("party 1 wedges")
        else {
            panic!("expected transport failure");
        };
        assert_eq!(survivor.party, 1);
        assert_eq!(survivor.peer, Some(0));
    }

    #[test]
    fn note_round_crash_raises_on_endpoint() {
        let plan = FaultPlan::parse(&["crash_party 1 at_round=1".into()], 0).unwrap();
        let eps = faulty_network(2, NetConfig::default(), &plan);
        let results = try_run_parties_on(eps, |ep| {
            ep.note_round();
            ep.id()
        });
        assert_eq!(*results[0].as_ref().unwrap(), 0);
        let crate::RunFailure::Transport(crash) =
            results[1].as_ref().expect_err("party 1 crashes at round 1")
        else {
            panic!("expected transport failure");
        };
        assert_eq!(crash.kind, TransportErrorKind::InjectedCrash);
        assert_eq!(crash.party, 1);
    }
}
