//! In-process multi-party messaging substrate.
//!
//! The original Pivot evaluation runs one process per client on a LAN
//! cluster, wired together with `libscapi`. This crate reproduces that
//! topology inside one process: each client is an OS thread holding an
//! [`Endpoint`]; endpoints exchange length-prefixed binary messages over
//! crossbeam channels, and every byte crossing a channel is accounted in
//! [`NetStats`] so the benchmarks can report communication volume.
//!
//! The [`wire`] module is a tiny self-contained binary codec (no serde):
//! every protocol message type implements [`Wire`] and is encoded into a
//! flat byte buffer — that is exactly what would travel over a socket, so
//! byte counts are faithful.

mod endpoint;
mod stats;
pub mod wire;

pub use endpoint::{run_parties, Endpoint, Network};
pub use stats::NetStats;
pub use wire::{Wire, WireError};
