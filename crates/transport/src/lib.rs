//! Multi-party messaging substrate with pluggable backends.
//!
//! The original Pivot evaluation runs one process per client on a LAN
//! cluster, wired together with `libscapi`. This crate reproduces that
//! topology behind a backend-agnostic [`Endpoint`]: all collectives
//! (send/recv/broadcast/gather/scatter/exchange), traffic accounting
//! ([`NetStats`]), and LAN simulation ([`NetConfig`]) are implemented once
//! over byte-level [`Link`]s, with two shipped backends:
//!
//! - **in-process channels** ([`Network`], [`run_parties`]): each client
//!   is an OS thread; links are crossbeam channel pairs;
//! - **TCP** ([`tcp::connect_mesh`]): each client is a real process;
//!   links are sockets carrying length-prefixed frames, rendezvoused via
//!   a shared peer-address list and a party-id handshake.
//!
//! The [`wire`] module is a tiny self-contained binary codec (no serde):
//! every protocol message type implements [`Wire`] and is encoded into a
//! flat byte buffer — that buffer is exactly what travels over a socket
//! in TCP mode, so byte counts are faithful and identical across
//! backends.

mod config;
mod endpoint;
mod error;
pub mod fault;
mod link;
mod stats;
pub mod tcp;
pub mod wire;

pub use config::{NetConfig, DEFAULT_CONNECT_TIMEOUT, DEFAULT_RECV_TIMEOUT, MAX_RECV_TIMEOUT_SECS};
pub use endpoint::{
    run_parties, run_parties_on, run_parties_with, try_run_parties_on, try_run_parties_with,
    Endpoint, Network,
};
pub use error::{
    catch_failures, catch_transport, panic_message, Direction, ProtocolError, RunFailure,
    TransportError, TransportErrorKind,
};
pub use fault::{
    faulty_network, FaultInjector, FaultKind, FaultPlan, FaultSpec, FaultTrigger, FaultyLink,
};
pub use link::{ChannelLink, Link, LinkError};
pub use stats::NetStats;
pub use wire::{Wire, WireError};
