//! Loopback integration tests for the TCP backend: the same collectives
//! the in-process tests exercise, plus cross-backend byte-count parity.

use pivot_transport::tcp::run_parties_tcp;
use pivot_transport::{run_parties_with, NetConfig};

#[test]
fn tcp_point_to_point_and_broadcast() {
    let results = run_parties_tcp(3, NetConfig::default(), |ep| {
        if ep.id() == 0 {
            ep.broadcast(&"over tcp".to_string());
            ep.send(2, &7u64);
            (String::from("root"), 0u64)
        } else {
            let hello = ep.recv::<String>(0);
            let extra = if ep.id() == 2 { ep.recv::<u64>(0) } else { 0 };
            (hello, extra)
        }
    });
    assert_eq!(results[1].0, "over tcp");
    assert_eq!(results[2], ("over tcp".to_string(), 7));
}

#[test]
fn tcp_collectives_match_in_process_semantics() {
    let results = run_parties_tcp(3, NetConfig::default(), |ep| {
        let all = ep.exchange_all(&(ep.id() as u64 * 10));
        let gathered = ep.gather(1, &(ep.id() as u64));
        let scattered = ep.scatter(
            0,
            if ep.id() == 0 {
                Some(vec![100u64, 200, 300])
            } else {
                None
            }
            .as_deref(),
        );
        (all, gathered, scattered)
    });
    for (id, (all, gathered, scattered)) in results.iter().enumerate() {
        assert_eq!(all, &vec![0, 10, 20]);
        assert_eq!(gathered.is_some(), id == 1);
        assert_eq!(*scattered, 100 * (id as u64 + 1));
    }
    assert_eq!(results[1].1, Some(vec![0, 1, 2]));
}

#[test]
fn tcp_byte_counts_match_in_process_backend() {
    // Same protocol, both backends: NetStats accounts payload bytes only
    // (framing is transport-internal), so counts must agree bit-for-bit.
    let protocol = |ep: &pivot_transport::Endpoint| {
        let _ = ep.exchange_all(&vec![ep.id() as u64; 5]);
        if ep.id() == 0 {
            ep.send(1, &vec![1u8, 2, 3]);
        } else if ep.id() == 1 {
            let _: Vec<u8> = ep.recv(0);
        }
        (ep.stats().bytes_sent(), ep.stats().bytes_received())
    };
    let in_process = run_parties_with(3, NetConfig::default(), |ep| protocol(&ep));
    let over_tcp = run_parties_tcp(3, NetConfig::default(), |ep| protocol(&ep));
    assert_eq!(in_process, over_tcp);
    assert!(in_process[0].0 > 0);
}

#[test]
fn tcp_many_large_frames_both_directions() {
    // Both parties stream 200 KiB at each other before either reads —
    // exercises the writer-thread queue that prevents send/send deadlock.
    let results = run_parties_tcp(2, NetConfig::default(), |ep| {
        let peer = 1 - ep.id();
        let payload = vec![ep.id() as u64; 25_000]; // 200 KB per message
        ep.send(peer, &payload);
        ep.send(peer, &payload);
        let a: Vec<u64> = ep.recv(peer);
        let b: Vec<u64> = ep.recv(peer);
        assert_eq!(a, vec![peer as u64; 25_000]);
        assert_eq!(b, a);
        ep.stats().bytes_received()
    });
    assert_eq!(results[0], results[1]);
}

#[test]
fn tcp_mesh_scales_to_five_parties() {
    let results = run_parties_tcp(5, NetConfig::default(), |ep| {
        ep.exchange_all(&(ep.id() as u64)).iter().sum::<u64>()
    });
    assert_eq!(results, vec![10; 5]);
}
