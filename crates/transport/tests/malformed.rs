//! Property tests for hostile bytes: truncated, corrupted, and
//! oversized frames must surface typed errors (`WireError` at the codec,
//! `TransportErrorKind::Malformed` at the recv path) — never a panic.

use pivot_transport::wire::{decode_envelope, encode_envelope};
use pivot_transport::{
    catch_transport, ChannelLink, Endpoint, Link, NetConfig, TransportErrorKind,
};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The envelope decoder is total: any byte string either decodes or
    /// returns a `WireError`.
    #[test]
    fn arbitrary_bytes_never_panic_the_envelope_codec(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = decode_envelope(&bytes);
    }

    /// Strictly truncating a valid envelope always yields an error — a
    /// partial frame can never silently decode as a shorter one.
    #[test]
    fn truncated_envelopes_are_rejected(
        msgs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..32),
            0..5,
        ),
        cut in any::<u16>(),
    ) {
        let frame = encode_envelope(&msgs);
        let cut = cut as usize % frame.len();
        prop_assert!(decode_envelope(&frame[..cut]).is_err());
    }

    /// Flipping bits anywhere in a valid envelope never panics the
    /// decoder: it either rejects the frame or decodes *some* envelope
    /// (e.g. a payload-byte flip), but it must not read out of bounds.
    #[test]
    fn corrupted_envelopes_never_panic(
        msgs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..32),
            0..5,
        ),
        flip_at in any::<u16>(),
        xor in 1u8..=255,
    ) {
        let mut frame = encode_envelope(&msgs);
        let i = flip_at as usize % frame.len();
        frame[i] ^= xor;
        let _ = decode_envelope(&frame);
    }

    /// A member-length field larger than the frame (up to absurd sizes)
    /// is rejected without attempting the allocation.
    #[test]
    fn oversized_member_lengths_are_rejected(
        count in 1u64..4,
        len in (1u64 << 32)..(1u64 << 40),
    ) {
        let mut frame = Vec::new();
        frame.extend_from_slice(&count.to_le_bytes());
        frame.extend_from_slice(&len.to_le_bytes());
        prop_assert!(decode_envelope(&frame).is_err());
    }

    /// An implausible envelope count is rejected before reserving space.
    #[test]
    fn implausible_counts_are_rejected(
        count in (1u64 << 32)..u64::MAX,
        tail in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let mut frame = Vec::new();
        frame.extend_from_slice(&count.to_le_bytes());
        frame.extend_from_slice(&tail);
        prop_assert!(decode_envelope(&frame).is_err());
    }

    /// Hostile bytes pushed straight into a link never panic the
    /// endpoint's recv path: every outcome is a value or a typed
    /// `TransportError` (malformed frame, empty envelope, or a timeout
    /// when the garbage happens to decode to an envelope addressed
    /// elsewhere — with 0–64 random bytes a valid `u64` message is
    /// astronomically unlikely but tolerated).
    #[test]
    fn recv_path_surfaces_typed_errors_for_garbage(
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let (at_victim, at_attacker) = ChannelLink::pair(0, 1);
        let net = NetConfig {
            recv_timeout: Duration::from_millis(50),
            ..NetConfig::default()
        };
        let ep = Endpoint::from_links(0, vec![None, Some(Box::new(at_victim))], net);
        at_attacker.send_bytes(garbage).unwrap();
        match catch_transport(|| ep.recv::<u64>(1)) {
            Ok(_) => {}
            Err(err) => {
                prop_assert!(
                    matches!(
                        err.kind,
                        TransportErrorKind::Malformed | TransportErrorKind::Timeout
                    ),
                    "unexpected kind {:?}",
                    err.kind
                );
                prop_assert_eq!(err.party, 0);
            }
        }
    }
}
