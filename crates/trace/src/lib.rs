//! Span-based protocol tracing with round/byte attribution.
//!
//! The protocol layers (`pivot-transport`, `pivot-mpc`, the pools, the
//! trainers) call into this crate at well-known points; when tracing is
//! off — the default — every hook is a single relaxed atomic load and an
//! early return, with no allocation and no timestamp taken, so the traced
//! build's `trace = "off"` transcript is bit-identical to a build without
//! the hooks. When a collector is installed on a party thread, spans form
//! a per-thread stack and every send/recv/wait/round is attributed to the
//! *innermost* open span, so each span accrues its own exclusive
//! sub-totals. An implicit root span (phase `"other"`) catches everything
//! outside a named phase, which is what makes the per-phase column sums
//! equal the run's `NetStats`/`OpCounters` totals exactly.
//!
//! Two sinks exist:
//!
//! * the **party sink** — a thread-local collector per party thread,
//!   installed by the runner for the lifetime of one protocol run
//!   ([`install`]/[`finish`]);
//! * the **runtime sink** — one process-global buffer for events that
//!   happen off the party threads (worker-pool queue depth, background
//!   dealer refills), drained once per run ([`take_runtime`]).
//!
//! Exports: Chrome-trace/Perfetto JSON ([`chrome_trace_json`]), a
//! Prometheus-style text snapshot ([`prometheus_snapshot`]), and the
//! per-phase aggregate table ([`phase_table`]) the reports embed.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// How much the collector records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceLevel {
    /// No collector installed; every hook is a no-op (the default).
    #[default]
    Off,
    /// Phase spans, attribution, and pool/queue gauges.
    Phases,
    /// Everything in `Phases` plus fine-grained spans (per level/node,
    /// per MPC open/multiply).
    Full,
}

impl TraceLevel {
    /// `true` when nothing is recorded.
    pub fn is_off(self) -> bool {
        self == TraceLevel::Off
    }

    /// The scenario-file spelling of the level.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Phases => "phases",
            TraceLevel::Full => "full",
        }
    }
}

/// The span taxonomy: every phase name a span can carry, in report order.
/// `"other"` is the implicit root bucket (setup-to-teardown traffic that
/// no named phase claimed).
pub const PHASES: &[&str] = &[
    "setup",
    "stats",
    "conversion",
    "gain",
    "split_reveal",
    "update",
    "leaf",
    "predict",
    "reconnect",
    "checkpoint",
    "rejoin_wait",
    "other",
];

/// One closed span with its exclusive (innermost-attribution) counters.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Display name (phase name for phase spans, free-form otherwise).
    pub name: String,
    /// The phase bucket this span's counters belong to. Fine-grained
    /// spans inherit the enclosing phase at open time.
    pub phase: &'static str,
    /// Nesting depth at open time (root = 0).
    pub depth: usize,
    /// Whether this span *introduced* its phase (its wall time counts
    /// toward the phase; inherited spans only re-bucket counters).
    pub is_phase_root: bool,
    /// Monotonic open/close timestamps, nanoseconds since the process
    /// trace epoch (shared across all party threads).
    pub start_ns: u64,
    /// See `start_ns`.
    pub end_ns: u64,
    /// Bytes sent while this span was innermost.
    pub sent_bytes: u64,
    /// Bytes received while this span was innermost.
    pub recv_bytes: u64,
    /// Wall time spent blocked in `recv` while this span was innermost.
    pub wait_ns: u64,
    /// MPC communication rounds opened while this span was innermost.
    pub rounds: u64,
}

/// One gauge sample: `(series, timestamp, value)`.
#[derive(Clone, Debug, PartialEq)]
pub struct GaugeSample {
    pub name: &'static str,
    pub ts_ns: u64,
    pub value: f64,
}

/// Everything one party thread recorded during a run.
#[derive(Clone, Debug)]
pub struct PartyTrace {
    pub party: usize,
    pub level: TraceLevel,
    /// Spans in close order (the root span is last).
    pub spans: Vec<SpanRecord>,
    pub gauges: Vec<GaugeSample>,
}

/// A span recorded off the party threads (background work).
#[derive(Clone, Debug, PartialEq)]
pub struct RuntimeSpan {
    pub name: &'static str,
    pub start_ns: u64,
    pub end_ns: u64,
}

/// Events from the process-global runtime sink (worker pool, background
/// refills). Drained once per run with [`take_runtime`].
#[derive(Clone, Debug, Default)]
pub struct RuntimeTrace {
    pub spans: Vec<RuntimeSpan>,
    pub gauges: Vec<GaugeSample>,
}

impl RuntimeTrace {
    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.gauges.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Collector plumbing
// ---------------------------------------------------------------------------

/// Number of installed collectors, process-wide. The fast path of every
/// hook is one relaxed load of this counter; zero means "do nothing"
/// before any thread-local access, timestamp, or allocation happens.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// The process trace epoch: all timestamps from all threads are offsets
/// from this single `Instant`, so tracks line up in the exported timeline.
fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch (monotonic).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

struct OpenSpan {
    name: String,
    phase: &'static str,
    depth: usize,
    is_phase_root: bool,
    start_ns: u64,
    sent_bytes: u64,
    recv_bytes: u64,
    wait_ns: u64,
    rounds: u64,
}

struct Collector {
    party: usize,
    level: TraceLevel,
    stack: Vec<OpenSpan>,
    done: Vec<SpanRecord>,
    gauges: Vec<GaugeSample>,
}

impl Drop for Collector {
    fn drop(&mut self) {
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

impl Collector {
    fn open(&mut self, name: String, phase: Option<&'static str>) {
        let inherited = self.stack.last().map(|s| s.phase).unwrap_or("other");
        self.stack.push(OpenSpan {
            name,
            phase: phase.unwrap_or(inherited),
            depth: self.stack.len(),
            is_phase_root: phase.is_some(),
            start_ns: now_ns(),
            sent_bytes: 0,
            recv_bytes: 0,
            wait_ns: 0,
            rounds: 0,
        });
    }

    fn close(&mut self) {
        let s = self.stack.pop().expect("span close without open");
        self.done.push(SpanRecord {
            name: s.name,
            phase: s.phase,
            depth: s.depth,
            is_phase_root: s.is_phase_root,
            start_ns: s.start_ns,
            end_ns: now_ns(),
            sent_bytes: s.sent_bytes,
            recv_bytes: s.recv_bytes,
            wait_ns: s.wait_ns,
            rounds: s.rounds,
        });
    }
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
    /// Phase names currently open on this thread, maintained by
    /// [`phase_span`] even when no collector is installed — error paths
    /// (transport failures) read [`current_phase`] to label where a run
    /// died without requiring tracing to be on.
    static PHASE_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// The innermost phase open on this thread (`"other"` outside any phase
/// span). Always tracked, independent of the trace level.
pub fn current_phase() -> &'static str {
    PHASE_STACK.with(|s| s.borrow().last().copied().unwrap_or("other"))
}

/// Install a collector on the current (party) thread and open the
/// implicit root span. A `TraceLevel::Off` install is a no-op; any
/// previously installed collector on this thread is discarded.
pub fn install(party: usize, level: TraceLevel) {
    if level.is_off() {
        COLLECTOR.with(|c| c.borrow_mut().take());
        return;
    }
    let mut col = Collector {
        party,
        level,
        stack: Vec::with_capacity(8),
        done: Vec::new(),
        gauges: Vec::new(),
    };
    col.open(format!("party {party}"), Some("other"));
    ACTIVE.fetch_add(1, Ordering::Relaxed);
    COLLECTOR.with(|c| *c.borrow_mut() = Some(col));
}

/// Close every open span (root included) and take the trace off the
/// current thread. Returns `None` when no collector was installed.
pub fn finish() -> Option<PartyTrace> {
    let mut col = COLLECTOR.with(|c| c.borrow_mut().take())?;
    while !col.stack.is_empty() {
        col.close();
    }
    Some(PartyTrace {
        party: col.party,
        level: col.level,
        spans: std::mem::take(&mut col.done),
        gauges: std::mem::take(&mut col.gauges),
    })
}

/// Fast gate: is any collector installed anywhere in the process? One
/// relaxed atomic load — the entire cost of every hook when tracing is
/// off.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

#[inline]
fn with_collector(f: impl FnOnce(&mut Collector)) {
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            f(col);
        }
    });
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// RAII guard that closes the span it opened. A guard returned while
/// tracing is off (or below the span's level) is inert.
#[must_use = "the span closes when the guard drops"]
pub struct SpanGuard {
    active: bool,
    /// Whether this guard pushed onto the always-on phase stack.
    phase_tracked: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            with_collector(|col| col.close());
        }
        if self.phase_tracked {
            PHASE_STACK.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

fn open_span(
    min_level: TraceLevel,
    phase: Option<&'static str>,
    name: impl FnOnce() -> String,
) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            active: false,
            phase_tracked: false,
        };
    }
    let mut active = false;
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            let wants = match min_level {
                TraceLevel::Off => true,
                TraceLevel::Phases => !col.level.is_off(),
                TraceLevel::Full => col.level == TraceLevel::Full,
            };
            if wants {
                col.open(name(), phase);
                active = true;
            }
        }
    });
    SpanGuard {
        active,
        phase_tracked: false,
    }
}

/// Open a phase span (recorded at `Phases` and `Full`). `phase` must be
/// one of [`PHASES`]; counters accrued while this span is innermost are
/// bucketed under it in the phase table, and its wall time counts toward
/// the phase. The phase name is also pushed onto the always-on
/// [`current_phase`] stack regardless of trace level.
pub fn phase_span(phase: &'static str) -> SpanGuard {
    debug_assert!(PHASES.contains(&phase), "unknown phase {phase:?}");
    let mut guard = open_span(TraceLevel::Phases, Some(phase), || phase.to_string());
    PHASE_STACK.with(|s| s.borrow_mut().push(phase));
    guard.phase_tracked = true;
    guard
}

/// Open a fine-grained span (recorded at `Full` only). Inherits the
/// enclosing phase.
pub fn span(name: &'static str) -> SpanGuard {
    open_span(TraceLevel::Full, None, || name.to_string())
}

/// [`span`] with a lazily built name — the closure only runs when the
/// span is actually recorded, so callers can interpolate without paying
/// an allocation when tracing is off.
pub fn span_fn(name: impl FnOnce() -> String) -> SpanGuard {
    open_span(TraceLevel::Full, None, name)
}

// ---------------------------------------------------------------------------
// Attribution + gauges
// ---------------------------------------------------------------------------

macro_rules! accrue {
    ($fn_name:ident, $field:ident, $doc:literal) => {
        #[doc = $doc]
        #[inline]
        pub fn $fn_name(n: u64) {
            if !enabled() {
                return;
            }
            with_collector(|col| {
                if let Some(top) = col.stack.last_mut() {
                    top.$field += n;
                }
            });
        }
    };
}

accrue!(
    add_sent,
    sent_bytes,
    "Attribute sent bytes to the innermost open span."
);
accrue!(
    add_recv,
    recv_bytes,
    "Attribute received bytes to the innermost open span."
);
accrue!(
    add_wait_ns,
    wait_ns,
    "Attribute blocking-receive wall time to the innermost open span."
);
accrue!(
    add_rounds,
    rounds,
    "Attribute MPC communication rounds to the innermost open span."
);

/// Record a gauge sample on the current party thread's track (pool hit
/// rates and the like). No-op without an installed collector.
pub fn gauge(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    with_collector(|col| {
        let ts_ns = now_ns();
        col.gauges.push(GaugeSample { name, ts_ns, value });
    });
}

// ---------------------------------------------------------------------------
// Runtime sink (events off the party threads)
// ---------------------------------------------------------------------------

fn runtime_sink() -> &'static Mutex<RuntimeTrace> {
    static SINK: OnceLock<Mutex<RuntimeTrace>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(RuntimeTrace::default()))
}

/// Record a gauge sample in the process-global runtime sink (worker-pool
/// queue depth). Safe from any thread; gated on [`enabled`].
pub fn runtime_gauge(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    let ts_ns = now_ns();
    runtime_sink()
        .lock()
        .expect("runtime sink poisoned")
        .gauges
        .push(GaugeSample { name, ts_ns, value });
}

/// RAII guard for a background span recorded in the runtime sink.
#[must_use = "the span closes when the guard drops"]
pub struct RuntimeSpanGuard {
    name: &'static str,
    start_ns: u64,
    active: bool,
}

impl Drop for RuntimeSpanGuard {
    fn drop(&mut self) {
        if self.active {
            let end_ns = now_ns();
            runtime_sink()
                .lock()
                .expect("runtime sink poisoned")
                .spans
                .push(RuntimeSpan {
                    name: self.name,
                    start_ns: self.start_ns,
                    end_ns,
                });
        }
    }
}

/// Open a background span (dealer-pool refill chunks etc.) on whatever
/// thread is running the work. Inert while tracing is off.
pub fn runtime_span(name: &'static str) -> RuntimeSpanGuard {
    let active = enabled();
    RuntimeSpanGuard {
        name,
        start_ns: if active { now_ns() } else { 0 },
        active,
    }
}

/// Drain the runtime sink. Call once per run, after the party threads
/// have finished.
pub fn take_runtime() -> RuntimeTrace {
    std::mem::take(&mut *runtime_sink().lock().expect("runtime sink poisoned"))
}

// ---------------------------------------------------------------------------
// Phase table
// ---------------------------------------------------------------------------

/// One row of the per-phase aggregate table.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseRow {
    pub phase: String,
    /// Number of phase spans that introduced this phase.
    pub span_count: u64,
    /// Wall time inside the phase's spans. For `"other"` this is the
    /// root span's time *outside* every named phase, so rows sum to the
    /// run's wall clock instead of double-counting.
    pub wall_ns: u64,
    /// Blocking-receive wall time attributed to the phase.
    pub wait_ns: u64,
    /// MPC rounds attributed to the phase.
    pub rounds: u64,
    /// Bytes sent from the phase.
    pub sent_bytes: u64,
    /// Bytes received in the phase.
    pub recv_bytes: u64,
}

/// Aggregate a party trace into the per-phase table, ordered as
/// [`PHASES`] (phases with no activity are omitted). The counter columns
/// sum exclusive span counters, so their totals equal the run's
/// `NetStats`/`OpCounters` totals exactly.
pub fn phase_table(trace: &PartyTrace) -> Vec<PhaseRow> {
    phase_table_of(&trace.spans)
}

/// [`phase_table`] over raw span records (used when re-aggregating a
/// parsed export).
pub fn phase_table_of(spans: &[SpanRecord]) -> Vec<PhaseRow> {
    let mut rows: Vec<PhaseRow> = PHASES
        .iter()
        .map(|&p| PhaseRow {
            phase: p.to_string(),
            ..PhaseRow::default()
        })
        .collect();
    let idx = |phase: &str| {
        PHASES
            .iter()
            .position(|&p| p == phase)
            .unwrap_or(PHASES.len() - 1)
    };
    let mut named_phase_wall = 0u64;
    for s in spans {
        let row = &mut rows[idx(s.phase)];
        row.wait_ns += s.wait_ns;
        row.rounds += s.rounds;
        row.sent_bytes += s.sent_bytes;
        row.recv_bytes += s.recv_bytes;
        if s.is_phase_root && s.depth > 0 {
            row.span_count += 1;
            row.wall_ns += s.end_ns - s.start_ns;
            named_phase_wall += s.end_ns - s.start_ns;
        }
    }
    // The root span (depth 0) is the "other" bucket: its wall is the run
    // minus every named phase, so the column sums to the run wall clock.
    if let Some(root) = spans.iter().find(|s| s.depth == 0) {
        let other = &mut rows[idx("other")];
        other.span_count += 1;
        other.wall_ns += (root.end_ns - root.start_ns).saturating_sub(named_phase_wall);
    }
    rows.retain(|r| {
        r.span_count > 0 || r.rounds > 0 || r.sent_bytes > 0 || r.recv_bytes > 0 || r.wait_ns > 0
    });
    rows
}

/// Element-wise sum of phase tables (for cross-party aggregation): rows
/// are matched by phase name; wall/wait columns add across parties.
pub fn merge_phase_tables(tables: &[Vec<PhaseRow>]) -> Vec<PhaseRow> {
    let mut rows: Vec<PhaseRow> = Vec::new();
    for table in tables {
        for r in table {
            match rows.iter_mut().find(|m| m.phase == r.phase) {
                Some(m) => {
                    m.span_count += r.span_count;
                    m.wall_ns += r.wall_ns;
                    m.wait_ns += r.wait_ns;
                    m.rounds += r.rounds;
                    m.sent_bytes += r.sent_bytes;
                    m.recv_bytes += r.recv_bytes;
                }
                None => rows.push(r.clone()),
            }
        }
    }
    rows.sort_by_key(|r| {
        PHASES
            .iter()
            .position(|&p| p == r.phase)
            .unwrap_or(PHASES.len())
    });
    rows
}

// ---------------------------------------------------------------------------
// Exports
// ---------------------------------------------------------------------------

/// Escape a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1000.0)
}

/// The synthetic Chrome-trace thread id for the runtime (off-party) track.
pub const RUNTIME_TID: usize = 99;

/// Export party traces (plus the optional runtime sink) as Chrome-trace /
/// Perfetto JSON: one track per party (`pid` 1, `tid` = party id),
/// balanced `B`/`E` duration events carrying the exclusive counters on
/// `E`, `C` counter events for every gauge series, and a `tid`-99 track
/// for background work. Open with `ui.perfetto.dev` or
/// `chrome://tracing`.
pub fn chrome_trace_json(parties: &[PartyTrace], runtime: Option<&RuntimeTrace>) -> String {
    // (tid, ts_ns, order, depth_key, json) — sorted so each track's B/E
    // stream nests correctly even at equal timestamps: at a tie, closes
    // (deepest first) precede opens (shallowest first), and counters
    // come last.
    let mut events: Vec<(usize, u64, u8, i64, String)> = Vec::new();
    let mut meta: Vec<String> = Vec::new();

    for t in parties {
        let tid = t.party;
        meta.push(format!(
            r#"{{"ph":"M","pid":1,"tid":{tid},"name":"thread_name","args":{{"name":"party {tid}"}}}}"#
        ));
        for s in &t.spans {
            let cat = if s.is_phase_root { "phase" } else { "span" };
            events.push((
                tid,
                s.start_ns,
                1,
                s.depth as i64,
                format!(
                    r#"{{"ph":"B","pid":1,"tid":{tid},"ts":{},"name":"{}","cat":"{cat}","args":{{"phase":"{}"}}}}"#,
                    us(s.start_ns),
                    esc(&s.name),
                    s.phase
                ),
            ));
            events.push((
                tid,
                s.end_ns,
                0,
                -(s.depth as i64),
                format!(
                    r#"{{"ph":"E","pid":1,"tid":{tid},"ts":{},"args":{{"sent_bytes":{},"recv_bytes":{},"wait_ns":{},"rounds":{}}}}}"#,
                    us(s.end_ns),
                    s.sent_bytes,
                    s.recv_bytes,
                    s.wait_ns,
                    s.rounds
                ),
            ));
        }
        for g in &t.gauges {
            events.push((
                tid,
                g.ts_ns,
                2,
                0,
                format!(
                    r#"{{"ph":"C","pid":1,"tid":{tid},"ts":{},"name":"{} (party {tid})","args":{{"value":{}}}}}"#,
                    us(g.ts_ns),
                    esc(g.name),
                    finite(g.value)
                ),
            ));
        }
    }
    if let Some(rt) = runtime {
        if !rt.is_empty() {
            meta.push(format!(
                r#"{{"ph":"M","pid":1,"tid":{RUNTIME_TID},"name":"thread_name","args":{{"name":"runtime"}}}}"#
            ));
        }
        for s in &rt.spans {
            events.push((
                RUNTIME_TID,
                s.start_ns,
                1,
                0,
                format!(
                    r#"{{"ph":"B","pid":1,"tid":{RUNTIME_TID},"ts":{},"name":"{}","cat":"runtime","args":{{}}}}"#,
                    us(s.start_ns),
                    esc(s.name)
                ),
            ));
            events.push((
                RUNTIME_TID,
                s.end_ns,
                0,
                0,
                format!(
                    r#"{{"ph":"E","pid":1,"tid":{RUNTIME_TID},"ts":{},"args":{{}}}}"#,
                    us(s.end_ns)
                ),
            ));
        }
        for g in &rt.gauges {
            events.push((
                RUNTIME_TID,
                g.ts_ns,
                2,
                0,
                format!(
                    r#"{{"ph":"C","pid":1,"tid":{RUNTIME_TID},"ts":{},"name":"{}","args":{{"value":{}}}}}"#,
                    us(g.ts_ns),
                    esc(g.name),
                    finite(g.value)
                ),
            ));
        }
    }
    events.sort_by(|a, b| {
        (a.0, a.1, a.2, a.3)
            .partial_cmp(&(b.0, b.1, b.2, b.3))
            .expect("total order")
    });
    let mut body: Vec<String> = meta;
    body.extend(events.into_iter().map(|(_, _, _, _, j)| j));
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        body.join(",\n")
    )
}

fn finite(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".into()
    }
}

/// Escape a Prometheus label value.
fn prom_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Export a Prometheus-style text metrics snapshot: per-party per-phase
/// counters plus the last value of every gauge series. This is the seam
/// a future `pivot serve` daemon would expose on `/metrics`.
pub fn prometheus_snapshot(parties: &[PartyTrace], runtime: Option<&RuntimeTrace>) -> String {
    let mut out = String::new();
    let metrics: [(&str, &str, fn(&PhaseRow) -> f64); 5] = [
        ("pivot_phase_wall_seconds", "gauge", |r| {
            r.wall_ns as f64 / 1e9
        }),
        ("pivot_phase_wait_seconds", "gauge", |r| {
            r.wait_ns as f64 / 1e9
        }),
        ("pivot_phase_rounds_total", "counter", |r| r.rounds as f64),
        ("pivot_phase_sent_bytes_total", "counter", |r| {
            r.sent_bytes as f64
        }),
        ("pivot_phase_recv_bytes_total", "counter", |r| {
            r.recv_bytes as f64
        }),
    ];
    let tables: Vec<(usize, Vec<PhaseRow>)> =
        parties.iter().map(|t| (t.party, phase_table(t))).collect();
    for (name, kind, get) in metrics {
        out.push_str(&format!("# TYPE {name} {kind}\n"));
        for (party, table) in &tables {
            for row in table {
                out.push_str(&format!(
                    "{name}{{party=\"{party}\",phase=\"{}\"}} {}\n",
                    prom_label(&row.phase),
                    get(row)
                ));
            }
        }
    }
    out.push_str("# TYPE pivot_gauge gauge\n");
    for t in parties {
        let mut last: Vec<(&str, f64)> = Vec::new();
        for g in &t.gauges {
            match last.iter_mut().find(|(n, _)| *n == g.name) {
                Some(slot) => slot.1 = g.value,
                None => last.push((g.name, g.value)),
            }
        }
        for (name, value) in last {
            out.push_str(&format!(
                "pivot_gauge{{party=\"{}\",series=\"{}\"}} {}\n",
                t.party,
                prom_label(name),
                finite(value)
            ));
        }
    }
    if let Some(rt) = runtime {
        let mut last: Vec<(&str, f64)> = Vec::new();
        for g in &rt.gauges {
            match last.iter_mut().find(|(n, _)| *n == g.name) {
                Some(slot) => slot.1 = g.value,
                None => last.push((g.name, g.value)),
            }
        }
        for (name, value) in last {
            out.push_str(&format!(
                "pivot_gauge{{party=\"runtime\",series=\"{}\"}} {}\n",
                prom_label(name),
                finite(value)
            ));
        }
        out.push_str(&format!(
            "# TYPE pivot_runtime_background_spans_total counter\npivot_runtime_background_spans_total {}\n",
            rt.spans.len()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests that install collectors run on dedicated threads so the
    // thread-local state never leaks across `cargo test` workers.
    fn on_thread<T: Send>(f: impl FnOnce() -> T + Send) -> T {
        std::thread::scope(|s| s.spawn(f).join().expect("test thread"))
    }

    #[test]
    fn off_level_records_nothing() {
        on_thread(|| {
            install(3, TraceLevel::Off);
            add_sent(100);
            let _g = phase_span("setup");
            assert!(finish().is_none());
        });
    }

    #[test]
    fn attribution_goes_to_innermost_span() {
        let trace = on_thread(|| {
            install(0, TraceLevel::Full);
            add_sent(5); // root
            {
                let _p = phase_span("stats");
                add_sent(10);
                {
                    let _f = span("inner");
                    add_sent(1);
                    add_recv(2);
                    add_rounds(1);
                }
                add_wait_ns(7);
            }
            finish().expect("collector installed")
        });
        assert_eq!(trace.party, 0);
        // Close order: inner, stats, root.
        assert_eq!(trace.spans.len(), 3);
        let inner = &trace.spans[0];
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.phase, "stats"); // inherited
        assert!(!inner.is_phase_root);
        assert_eq!(
            (inner.sent_bytes, inner.recv_bytes, inner.rounds),
            (1, 2, 1)
        );
        let stats = &trace.spans[1];
        assert_eq!((stats.sent_bytes, stats.wait_ns), (10, 7));
        assert!(stats.is_phase_root);
        let root = &trace.spans[2];
        assert_eq!(root.depth, 0);
        assert_eq!(root.sent_bytes, 5);
        assert!(root.start_ns <= stats.start_ns && stats.end_ns <= root.end_ns);
    }

    #[test]
    fn phases_level_skips_fine_spans() {
        let trace = on_thread(|| {
            install(1, TraceLevel::Phases);
            {
                let _p = phase_span("gain");
                let _f = span("fine");
                let _d = span_fn(|| "dyn".into());
                add_rounds(2);
            }
            finish().unwrap()
        });
        assert_eq!(trace.spans.len(), 2); // gain + root
        assert_eq!(trace.spans[0].name, "gain");
        assert_eq!(trace.spans[0].rounds, 2);
    }

    #[test]
    fn phase_table_sums_match_totals_and_other_catches_root() {
        let trace = on_thread(|| {
            install(0, TraceLevel::Phases);
            add_sent(3); // outside every phase -> "other"
            {
                let _p = phase_span("stats");
                add_sent(10);
                add_recv(20);
                add_rounds(2);
            }
            {
                let _p = phase_span("stats");
                add_sent(1);
            }
            {
                let _p = phase_span("gain");
                add_rounds(5);
                add_wait_ns(9);
            }
            finish().unwrap()
        });
        let table = phase_table(&trace);
        let stats = table.iter().find(|r| r.phase == "stats").unwrap();
        assert_eq!(stats.span_count, 2);
        assert_eq!(
            (stats.sent_bytes, stats.recv_bytes, stats.rounds),
            (11, 20, 2)
        );
        let gain = table.iter().find(|r| r.phase == "gain").unwrap();
        assert_eq!((gain.rounds, gain.wait_ns), (5, 9));
        let other = table.iter().find(|r| r.phase == "other").unwrap();
        assert_eq!(other.sent_bytes, 3);
        // Column sums equal everything recorded.
        let sent: u64 = table.iter().map(|r| r.sent_bytes).sum();
        let rounds: u64 = table.iter().map(|r| r.rounds).sum();
        assert_eq!((sent, rounds), (14, 7));
        // Wall sums to the root's duration (no double counting).
        let root = trace.spans.last().unwrap();
        let wall: u64 = table.iter().map(|r| r.wall_ns).sum();
        assert_eq!(wall, root.end_ns - root.start_ns);
    }

    #[test]
    fn chrome_export_is_balanced_and_monotonic() {
        let trace = on_thread(|| {
            install(2, TraceLevel::Full);
            {
                let _p = phase_span("conversion");
                let _f = span("open");
                add_sent(8);
            }
            gauge("nonce_pool_hit_rate", 0.5);
            finish().unwrap()
        });
        let json = chrome_trace_json(&[trace], None);
        let begins = json.matches("\"ph\":\"B\"").count();
        let ends = json.matches("\"ph\":\"E\"").count();
        assert_eq!(begins, ends);
        assert_eq!(begins, 3); // root + conversion + open
        assert_eq!(json.matches("\"ph\":\"C\"").count(), 1);
        assert!(json.contains("\"name\":\"thread_name\""));
        assert!(json.contains("party 2"));
        // Timestamps within the track never decrease in file order.
        let mut last = f64::MIN;
        for line in json.lines().filter(|l| l.contains("\"ts\":")) {
            let ts: f64 = line
                .split("\"ts\":")
                .nth(1)
                .unwrap()
                .split(',')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            assert!(ts >= last, "ts went backwards: {line}");
            last = ts;
        }
    }

    #[test]
    fn runtime_sink_collects_and_drains() {
        on_thread(|| {
            install(0, TraceLevel::Phases);
            {
                let _s = runtime_span("dealer_refill");
                runtime_gauge("queue_depth", 4.0);
            }
            let rt = take_runtime();
            assert!(rt.spans.iter().any(|s| s.name == "dealer_refill"));
            assert!(rt
                .gauges
                .iter()
                .any(|g| g.name == "queue_depth" && g.value == 4.0));
            let _ = finish();
            // Disabled again: nothing accumulates.
            runtime_gauge("queue_depth", 9.0);
            assert!(!take_runtime().gauges.iter().any(|g| g.value == 9.0));
        });
    }

    #[test]
    fn prometheus_snapshot_lists_phases_and_gauges() {
        let trace = on_thread(|| {
            install(1, TraceLevel::Phases);
            {
                let _p = phase_span("update");
                add_sent(100);
                add_rounds(3);
            }
            gauge("dealer_triple_hit_rate", 0.25);
            gauge("dealer_triple_hit_rate", 0.75);
            finish().unwrap()
        });
        let text = prometheus_snapshot(&[trace], None);
        assert!(text.contains("pivot_phase_sent_bytes_total{party=\"1\",phase=\"update\"} 100"));
        assert!(text.contains("pivot_phase_rounds_total{party=\"1\",phase=\"update\"} 3"));
        // Gauges report the last value.
        assert!(text.contains("pivot_gauge{party=\"1\",series=\"dealer_triple_hit_rate\"} 0.75"));
    }

    #[test]
    fn merge_phase_tables_adds_rows_by_phase() {
        let a = vec![PhaseRow {
            phase: "stats".into(),
            span_count: 1,
            sent_bytes: 10,
            rounds: 2,
            ..PhaseRow::default()
        }];
        let b = vec![
            PhaseRow {
                phase: "stats".into(),
                span_count: 1,
                sent_bytes: 5,
                ..PhaseRow::default()
            },
            PhaseRow {
                phase: "gain".into(),
                rounds: 7,
                ..PhaseRow::default()
            },
        ];
        let merged = merge_phase_tables(&[a, b]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].phase, "stats");
        assert_eq!((merged[0].sent_bytes, merged[0].span_count), (15, 2));
        assert_eq!(merged[1].rounds, 7);
    }

    #[test]
    fn current_phase_tracks_without_a_collector() {
        on_thread(|| {
            // No install: tracing is off, the phase stack still works.
            assert_eq!(current_phase(), "other");
            {
                let _p = phase_span("gain");
                assert_eq!(current_phase(), "gain");
                {
                    let _q = phase_span("reconnect");
                    assert_eq!(current_phase(), "reconnect");
                }
                assert_eq!(current_phase(), "gain");
            }
            assert_eq!(current_phase(), "other");
        });
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("plain"), "plain");
    }
}
