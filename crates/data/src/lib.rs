//! Datasets for the Pivot reproduction: dense numeric tables, CSV I/O,
//! synthetic generators shaped like the paper's evaluation data, vertical
//! partitioning across clients, candidate-split discretization, and metrics.
//!
//! The paper evaluates on three UCI datasets (credit card, bank marketing,
//! appliances energy) and on sklearn-generated synthetic data. The UCI
//! files are not redistributable here, so [`synth`] provides generators
//! that mimic `sklearn.datasets.make_classification` / `make_regression`
//! and presets with the exact shapes of the three real datasets (see
//! DESIGN.md §3 for why that preserves Table 3's claim).

mod csv;
mod dataset;
pub mod metrics;
mod partition;
mod splits;
pub mod synth;

pub use csv::{read_csv, write_csv};
pub use dataset::{Dataset, Task};
pub use partition::{partition_vertically, VerticalPartition, VerticalView};
pub use splits::{candidate_splits, SplitCandidates};
