//! Minimal CSV reader/writer for numeric datasets (label in the last column,
//! one optional header line).

use crate::{Dataset, Task};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Read a numeric CSV with the label in the **last** column.
///
/// Lines starting with `#` are skipped; if the first data line fails to
/// parse it is treated as a header and its names are attached.
pub fn read_csv(path: &Path, task: Task) -> std::io::Result<Dataset> {
    let reader = BufReader::new(File::open(path)?);
    let mut features = Vec::new();
    let mut labels = Vec::new();
    let mut names: Option<Vec<String>> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        let parsed: Result<Vec<f64>, _> = fields.iter().map(|f| f.parse::<f64>()).collect();
        match parsed {
            Ok(mut row) => {
                let label = row
                    .pop()
                    .unwrap_or_else(|| panic!("line {} has no columns", lineno + 1));
                features.push(row);
                labels.push(label);
            }
            Err(_) if features.is_empty() && names.is_none() => {
                // Header line: remember the feature names (drop the label name).
                let mut hdr: Vec<String> = fields.iter().map(|s| s.to_string()).collect();
                hdr.pop();
                names = Some(hdr);
            }
            Err(e) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("line {}: {e}", lineno + 1),
                ));
            }
        }
    }
    let mut ds = Dataset::new(features, labels, task);
    if let Some(n) = names {
        if n.len() == ds.num_features() {
            ds = ds.with_feature_names(n);
        }
    }
    Ok(ds)
}

/// Write a dataset as CSV (header + label in the last column).
pub fn write_csv(path: &Path, ds: &Dataset) -> std::io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    let mut header = ds.feature_names().join(",");
    header.push_str(",label");
    writeln!(w, "{header}")?;
    for i in 0..ds.num_samples() {
        let mut row: Vec<String> = ds.sample(i).iter().map(|v| format!("{v}")).collect();
        row.push(format!("{}", ds.label(i)));
        writeln!(w, "{}", row.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let dir = std::env::temp_dir().join("pivot_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.csv");
        let ds = Dataset::new(
            vec![vec![1.5, 2.0], vec![-3.0, 0.25]],
            vec![0.0, 1.0],
            Task::Classification { classes: 2 },
        );
        write_csv(&path, &ds).unwrap();
        let back = read_csv(&path, Task::Classification { classes: 2 }).unwrap();
        assert_eq!(back.num_samples(), 2);
        assert_eq!(back.num_features(), 2);
        assert_eq!(back.value(0, 0), 1.5);
        assert_eq!(back.label(1), 1.0);
        assert_eq!(back.feature_names(), ds.feature_names());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let dir = std::env::temp_dir().join("pivot_csv_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("commented.csv");
        std::fs::write(&path, "# comment\n\n1.0,2.0,0\n3.0,4.0,1\n").unwrap();
        let ds = read_csv(&path, Task::Classification { classes: 2 }).unwrap();
        assert_eq!(ds.num_samples(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_garbage_mid_file() {
        let dir = std::env::temp_dir().join("pivot_csv_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "1.0,2.0,0\nnot,a,number\n").unwrap();
        assert!(read_csv(&path, Task::Regression).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
