//! Dense in-memory datasets.

use std::fmt;

/// Learning task type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Task {
    /// Classification with `classes` label values `0..classes`.
    Classification { classes: usize },
    /// Regression with continuous labels.
    Regression,
}

impl Task {
    /// Number of classes (1 for regression, used to size per-class buffers).
    pub fn class_count(&self) -> usize {
        match self {
            Task::Classification { classes } => *classes,
            Task::Regression => 1,
        }
    }
}

/// A dense dataset: `n` samples × `d` features plus labels.
///
/// Features are stored row-major (`features[sample][feature]`); labels are
/// class indices (as `f64`) for classification or continuous targets for
/// regression.
#[derive(Clone, Debug)]
pub struct Dataset {
    features: Vec<Vec<f64>>,
    labels: Vec<f64>,
    task: Task,
    feature_names: Vec<String>,
}

impl Dataset {
    /// Build a dataset, validating shape invariants.
    pub fn new(features: Vec<Vec<f64>>, labels: Vec<f64>, task: Task) -> Self {
        assert_eq!(features.len(), labels.len(), "one label per sample");
        let d = features.first().map_or(0, |row| row.len());
        assert!(
            features.iter().all(|row| row.len() == d),
            "all samples need {d} features"
        );
        if let Task::Classification { classes } = task {
            assert!(classes >= 2, "classification needs at least 2 classes");
            for &label in &labels {
                let as_int = label as usize;
                assert!(
                    label.fract() == 0.0 && as_int < classes,
                    "label {label} out of range for {classes} classes"
                );
            }
        }
        let feature_names = (0..d).map(|j| format!("f{j}")).collect();
        Dataset {
            features,
            labels,
            task,
            feature_names,
        }
    }

    /// Attach human-readable feature names (for examples and model dumps).
    pub fn with_feature_names(mut self, names: Vec<String>) -> Self {
        assert_eq!(names.len(), self.num_features());
        self.feature_names = names;
        self
    }

    /// Number of samples `n`.
    pub fn num_samples(&self) -> usize {
        self.features.len()
    }

    /// Number of features `d`.
    pub fn num_features(&self) -> usize {
        self.features.first().map_or(0, |row| row.len())
    }

    /// The task.
    pub fn task(&self) -> Task {
        self.task
    }

    /// Feature names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// One sample row.
    pub fn sample(&self, i: usize) -> &[f64] {
        &self.features[i]
    }

    /// A single feature value.
    pub fn value(&self, sample: usize, feature: usize) -> f64 {
        self.features[sample][feature]
    }

    /// All labels.
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// Label of one sample.
    pub fn label(&self, i: usize) -> f64 {
        self.labels[i]
    }

    /// Class of one sample (classification only).
    pub fn class(&self, i: usize) -> usize {
        debug_assert!(matches!(self.task, Task::Classification { .. }));
        self.labels[i] as usize
    }

    /// Column view of a feature (copied).
    pub fn feature_column(&self, j: usize) -> Vec<f64> {
        self.features.iter().map(|row| row[j]).collect()
    }

    /// Split into train/test by a deterministic interleaved assignment:
    /// every `k`-th sample (by `test_fraction`) goes to test.
    pub fn train_test_split(&self, test_fraction: f64) -> (Dataset, Dataset) {
        assert!((0.0..1.0).contains(&test_fraction), "fraction in [0, 1)");
        let period = if test_fraction <= 0.0 {
            usize::MAX
        } else {
            (1.0 / test_fraction).round().max(2.0) as usize
        };
        let mut train_x = Vec::new();
        let mut train_y = Vec::new();
        let mut test_x = Vec::new();
        let mut test_y = Vec::new();
        for i in 0..self.num_samples() {
            if i % period == period - 1 {
                test_x.push(self.features[i].clone());
                test_y.push(self.labels[i]);
            } else {
                train_x.push(self.features[i].clone());
                train_y.push(self.labels[i]);
            }
        }
        (
            Dataset::new(train_x, train_y, self.task)
                .with_feature_names(self.feature_names.clone()),
            Dataset::new(test_x, test_y, self.task).with_feature_names(self.feature_names.clone()),
        )
    }

    /// Select a subset of samples by index.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let features = indices.iter().map(|&i| self.features[i].clone()).collect();
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        Dataset::new(features, labels, self.task).with_feature_names(self.feature_names.clone())
    }

    /// Replace the labels (used by GBDT residual boosting).
    pub fn with_labels(&self, labels: Vec<f64>, task: Task) -> Dataset {
        assert_eq!(labels.len(), self.num_samples());
        Dataset::new(self.features.clone(), labels, task)
            .with_feature_names(self.feature_names.clone())
    }

    /// Normalize labels into `[-1, 1]` (regression); returns the scale used.
    /// Pivot's MPC fixed-point layout requires bounded label magnitudes
    /// (DESIGN.md §8); the super client applies this public preprocessing.
    pub fn normalize_labels(&mut self) -> f64 {
        let max_abs = self
            .labels
            .iter()
            .fold(0.0f64, |acc, &y| acc.max(y.abs()))
            .max(f64::MIN_POSITIVE);
        for y in &mut self.labels {
            *y /= max_abs;
        }
        max_abs
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Dataset({} samples × {} features, {:?})",
            self.num_samples(),
            self.num_features(),
            self.task
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            vec![
                vec![1.0, 2.0],
                vec![3.0, 4.0],
                vec![5.0, 6.0],
                vec![7.0, 8.0],
            ],
            vec![0.0, 1.0, 0.0, 1.0],
            Task::Classification { classes: 2 },
        )
    }

    #[test]
    fn shape_accessors() {
        let d = toy();
        assert_eq!(d.num_samples(), 4);
        assert_eq!(d.num_features(), 2);
        assert_eq!(d.value(1, 0), 3.0);
        assert_eq!(d.class(1), 1);
        assert_eq!(d.feature_column(1), vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "one label per sample")]
    fn mismatched_labels_rejected() {
        Dataset::new(vec![vec![1.0]], vec![], Task::Regression);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_class_label_rejected() {
        Dataset::new(
            vec![vec![1.0], vec![2.0]],
            vec![0.0, 5.0],
            Task::Classification { classes: 2 },
        );
    }

    #[test]
    fn train_test_split_partitions() {
        let d = toy();
        let (train, test) = d.train_test_split(0.25);
        assert_eq!(train.num_samples() + test.num_samples(), 4);
        assert_eq!(test.num_samples(), 1);
    }

    #[test]
    fn subset_selects_rows() {
        let d = toy();
        let s = d.subset(&[0, 2]);
        assert_eq!(s.num_samples(), 2);
        assert_eq!(s.value(1, 0), 5.0);
    }

    #[test]
    fn normalize_labels_bounds() {
        let mut d = Dataset::new(
            vec![vec![0.0], vec![1.0], vec![2.0]],
            vec![10.0, -20.0, 5.0],
            Task::Regression,
        );
        let scale = d.normalize_labels();
        assert_eq!(scale, 20.0);
        assert!(d.labels().iter().all(|y| y.abs() <= 1.0));
        assert_eq!(d.label(0), 0.5);
    }
}
