//! Candidate-split discretization: at most `b` split values per feature
//! (the paper's "maximum split number" parameter, Table 4), chosen at
//! quantile boundaries. The privacy-preserving protocols and the plaintext
//! baselines share this discretization so accuracy comparisons are
//! apples-to-apples.

/// Candidate split thresholds for one feature.
#[derive(Clone, Debug, PartialEq)]
pub struct SplitCandidates {
    /// Sorted candidate thresholds (`≤ b` values). A sample goes left iff
    /// `value ≤ threshold`.
    pub thresholds: Vec<f64>,
}

impl SplitCandidates {
    /// Number of candidate splits.
    pub fn len(&self) -> usize {
        self.thresholds.len()
    }

    /// True if the feature yielded no usable split (constant column).
    pub fn is_empty(&self) -> bool {
        self.thresholds.is_empty()
    }
}

/// Compute quantile-based candidate splits for one feature column.
///
/// Midpoints between consecutive distinct quantile values are used as
/// thresholds, capped at `max_splits` (= the paper's `b`).
pub fn candidate_splits(column: &[f64], max_splits: usize) -> SplitCandidates {
    assert!(max_splits >= 1, "need at least one candidate split");
    let mut sorted: Vec<f64> = column.iter().copied().filter(|v| v.is_finite()).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    sorted.dedup();
    if sorted.len() < 2 {
        return SplitCandidates {
            thresholds: Vec::new(),
        };
    }
    // At most max_splits thresholds ⇒ max_splits+1 buckets over distinct
    // values; pick boundary midpoints at evenly spaced ranks.
    let buckets = max_splits + 1;
    let mut thresholds = Vec::with_capacity(max_splits);
    if sorted.len() <= buckets {
        // Few distinct values: midpoint between every consecutive pair.
        for w in sorted.windows(2) {
            thresholds.push((w[0] + w[1]) / 2.0);
        }
    } else {
        for cut in 1..buckets {
            let idx = cut * sorted.len() / buckets;
            let lo = sorted[idx - 1];
            let hi = sorted[idx];
            let mid = (lo + hi) / 2.0;
            if thresholds.last() != Some(&mid) {
                thresholds.push(mid);
            }
        }
    }
    SplitCandidates { thresholds }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_column_has_no_splits() {
        let c = candidate_splits(&[5.0; 10], 8);
        assert!(c.is_empty());
    }

    #[test]
    fn two_values_one_midpoint() {
        let c = candidate_splits(&[1.0, 3.0, 1.0, 3.0], 8);
        assert_eq!(c.thresholds, vec![2.0]);
    }

    #[test]
    fn respects_max_splits() {
        let col: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let c = candidate_splits(&col, 8);
        assert!(c.len() <= 8, "got {} splits", c.len());
        assert!(c.len() >= 7, "too few splits: {}", c.len());
        // Thresholds sorted and strictly increasing.
        for w in c.thresholds.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn thresholds_actually_separate() {
        let col = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let c = candidate_splits(&col, 4);
        for &t in &c.thresholds {
            let left = col.iter().filter(|&&v| v <= t).count();
            assert!(
                left > 0 && left < col.len(),
                "threshold {t} separates nothing"
            );
        }
    }

    #[test]
    fn ignores_non_finite() {
        let c = candidate_splits(&[1.0, f64::NAN, 2.0, f64::INFINITY], 4);
        assert_eq!(c.thresholds, vec![1.5]);
    }

    #[test]
    fn quantiles_balance_buckets() {
        // Heavily skewed data: quantile cuts should still split the mass.
        let mut col: Vec<f64> = (0..90).map(|_| 1.0).collect();
        col.extend((0..10).map(|i| 100.0 + i as f64));
        let c = candidate_splits(&col, 4);
        assert!(!c.is_empty());
    }
}
