//! Evaluation metrics used by Table 3: classification accuracy and MSE.

/// Fraction of exact label matches.
pub fn accuracy(predicted: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(predicted.len(), truth.len());
    assert!(!predicted.is_empty(), "empty prediction set");
    let correct = predicted
        .iter()
        .zip(truth)
        .filter(|(p, t)| (**p - **t).abs() < 0.5)
        .count();
    correct as f64 / predicted.len() as f64
}

/// Mean squared error.
pub fn mse(predicted: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(predicted.len(), truth.len());
    assert!(!predicted.is_empty(), "empty prediction set");
    let sum: f64 = predicted
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t) * (p - t))
        .sum();
    sum / predicted.len() as f64
}

/// Mean absolute error (extra diagnostic, not in the paper's tables).
pub fn mae(predicted: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(predicted.len(), truth.len());
    assert!(!predicted.is_empty(), "empty prediction set");
    let sum: f64 = predicted
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t).abs())
        .sum();
    sum / predicted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[0.0, 1.0, 1.0], &[0.0, 1.0, 0.0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[1.0], &[1.0]), 1.0);
    }

    #[test]
    fn mse_squares_errors() {
        assert_eq!(mse(&[0.0, 2.0], &[0.0, 0.0]), 2.0);
        assert_eq!(mse(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn mae_absolute_errors() {
        assert_eq!(mae(&[0.0, -2.0], &[0.0, 0.0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        accuracy(&[], &[]);
    }
}
