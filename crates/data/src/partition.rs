//! Vertical partitioning: the same samples, disjoint feature subsets per
//! client, labels held only by the super client (paper §3.1).

use crate::{Dataset, Task};

/// One client's view of a vertically partitioned dataset.
#[derive(Clone, Debug)]
pub struct VerticalView {
    /// Client id in `0..m`.
    pub client: usize,
    /// Global feature indices this client owns.
    pub feature_indices: Vec<usize>,
    /// The client's local columns (`samples × local_features`).
    pub features: Vec<Vec<f64>>,
    /// Labels — `Some` only for the super client.
    pub labels: Option<Vec<f64>>,
    /// The task (public protocol metadata).
    pub task: Task,
}

impl VerticalView {
    /// Number of samples (shared across clients).
    pub fn num_samples(&self) -> usize {
        self.features.len()
    }

    /// Number of local features `dᵢ`.
    pub fn num_local_features(&self) -> usize {
        self.feature_indices.len()
    }

    /// Local feature value.
    pub fn value(&self, sample: usize, local_feature: usize) -> f64 {
        self.features[sample][local_feature]
    }

    /// A local column (copied).
    pub fn column(&self, local_feature: usize) -> Vec<f64> {
        self.features.iter().map(|row| row[local_feature]).collect()
    }

    /// Whether this client holds the labels.
    pub fn is_super_client(&self) -> bool {
        self.labels.is_some()
    }
}

/// The full vertical partition (used by test harnesses that play all
/// parties; real deployments hand each [`VerticalView`] to its owner).
#[derive(Clone, Debug)]
pub struct VerticalPartition {
    pub views: Vec<VerticalView>,
}

/// Split `dataset` vertically across `m` clients in contiguous feature
/// blocks (as even as possible, matching the paper's "equally split w.r.t.
/// features"); `super_client` receives the labels.
pub fn partition_vertically(dataset: &Dataset, m: usize, super_client: usize) -> VerticalPartition {
    assert!(m >= 1, "need at least one client");
    assert!(super_client < m, "super client out of range");
    let d = dataset.num_features();
    assert!(d >= m, "cannot give every client at least one feature");

    let base = d / m;
    let extra = d % m;
    let mut views = Vec::with_capacity(m);
    let mut next = 0usize;
    for client in 0..m {
        let count = base + usize::from(client < extra);
        let indices: Vec<usize> = (next..next + count).collect();
        next += count;
        let features: Vec<Vec<f64>> = (0..dataset.num_samples())
            .map(|i| indices.iter().map(|&j| dataset.value(i, j)).collect())
            .collect();
        views.push(VerticalView {
            client,
            feature_indices: indices,
            features,
            labels: (client == super_client).then(|| dataset.labels().to_vec()),
            task: dataset.task(),
        });
    }
    VerticalPartition { views }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            vec![
                vec![1.0, 2.0, 3.0, 4.0, 5.0],
                vec![6.0, 7.0, 8.0, 9.0, 10.0],
            ],
            vec![0.0, 1.0],
            Task::Classification { classes: 2 },
        )
    }

    #[test]
    fn features_are_disjoint_and_complete() {
        let p = partition_vertically(&toy(), 3, 0);
        let mut all: Vec<usize> = p
            .views
            .iter()
            .flat_map(|v| v.feature_indices.clone())
            .collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
        // Sizes as even as possible: 2, 2, 1.
        let sizes: Vec<usize> = p.views.iter().map(|v| v.num_local_features()).collect();
        assert_eq!(sizes, vec![2, 2, 1]);
    }

    #[test]
    fn only_super_client_has_labels() {
        let p = partition_vertically(&toy(), 3, 1);
        assert!(!p.views[0].is_super_client());
        assert!(p.views[1].is_super_client());
        assert!(!p.views[2].is_super_client());
        assert_eq!(p.views[1].labels.as_ref().unwrap(), &vec![0.0, 1.0]);
    }

    #[test]
    fn values_match_source() {
        let ds = toy();
        let p = partition_vertically(&ds, 2, 0);
        // Client 1 owns features 3, 4.
        assert_eq!(p.views[1].feature_indices, vec![3, 4]);
        assert_eq!(p.views[1].value(1, 0), ds.value(1, 3));
        assert_eq!(p.views[1].column(1), vec![5.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "at least one feature")]
    fn too_many_clients_rejected() {
        partition_vertically(&toy(), 6, 0);
    }
}
