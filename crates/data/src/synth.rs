//! Synthetic dataset generators mimicking `sklearn.datasets`.
//!
//! `make_classification` places one Gaussian cluster per class on the
//! vertices of an informative-feature hypercube and fills the remaining
//! features with noise — the same construction sklearn uses (§8.1 of the
//! paper generates its efficiency datasets exactly this way).
//! `make_regression` draws a random linear model over informative features
//! and adds Gaussian noise.

use crate::{Dataset, Task};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Standard normal via Box–Muller (keeps us off rand_distr).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Parameters for [`make_classification`].
#[derive(Clone, Debug)]
pub struct ClassificationSpec {
    pub samples: usize,
    pub features: usize,
    /// Informative features (≤ `features`); the rest are pure noise.
    pub informative: usize,
    pub classes: usize,
    /// Cluster separation multiplier (sklearn's `class_sep`).
    pub class_sep: f64,
    /// Fraction of labels randomly flipped (sklearn's `flip_y`).
    pub flip_y: f64,
    pub seed: u64,
}

impl Default for ClassificationSpec {
    fn default() -> Self {
        ClassificationSpec {
            samples: 1000,
            features: 15,
            informative: 8,
            classes: 4,
            class_sep: 1.5,
            flip_y: 0.01,
            seed: 7,
        }
    }
}

/// Generate a classification dataset (one Gaussian cluster per class placed
/// on scaled hypercube vertices over the informative subspace).
pub fn make_classification(spec: &ClassificationSpec) -> Dataset {
    assert!(spec.informative >= 1 && spec.informative <= spec.features);
    assert!(spec.classes >= 2);
    // Hypercube must have enough vertices for the classes.
    assert!(
        (1usize << spec.informative.min(20)) >= spec.classes,
        "too few informative features for {} classes",
        spec.classes
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // Class centroids: distinct hypercube vertices scaled by class_sep.
    let mut centroids = Vec::with_capacity(spec.classes);
    for k in 0..spec.classes {
        let centroid: Vec<f64> = (0..spec.informative)
            .map(|j| {
                let bit = (k >> (j % 20)) & 1;
                (2.0 * bit as f64 - 1.0) * spec.class_sep
            })
            .collect();
        centroids.push(centroid);
    }

    let mut features = Vec::with_capacity(spec.samples);
    let mut labels = Vec::with_capacity(spec.samples);
    for _ in 0..spec.samples {
        // Random class assignment (approximately balanced). A round-robin
        // `i % classes` pattern would alias with interleaved train/test
        // splits and produce single-class test sets.
        let class = rng.gen_range(0..spec.classes);
        let mut row = Vec::with_capacity(spec.features);
        for j in 0..spec.informative {
            row.push(centroids[class][j] + gaussian(&mut rng));
        }
        for _ in spec.informative..spec.features {
            row.push(gaussian(&mut rng));
        }
        let label = if rng.gen::<f64>() < spec.flip_y {
            rng.gen_range(0..spec.classes)
        } else {
            class
        };
        features.push(row);
        labels.push(label as f64);
    }
    Dataset::new(
        features,
        labels,
        Task::Classification {
            classes: spec.classes,
        },
    )
}

/// Parameters for [`make_regression`].
#[derive(Clone, Debug)]
pub struct RegressionSpec {
    pub samples: usize,
    pub features: usize,
    pub informative: usize,
    /// Standard deviation of the additive label noise.
    pub noise: f64,
    pub seed: u64,
}

impl Default for RegressionSpec {
    fn default() -> Self {
        RegressionSpec {
            samples: 1000,
            features: 15,
            informative: 8,
            noise: 0.1,
            seed: 7,
        }
    }
}

/// Generate a regression dataset from a random linear model; labels are
/// rescaled into `[-1, 1]` (Pivot's bounded-label requirement, DESIGN.md §8).
pub fn make_regression(spec: &RegressionSpec) -> Dataset {
    assert!(spec.informative >= 1 && spec.informative <= spec.features);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let coef: Vec<f64> = (0..spec.informative)
        .map(|_| gaussian(&mut rng) * 2.0)
        .collect();

    let mut features = Vec::with_capacity(spec.samples);
    let mut labels = Vec::with_capacity(spec.samples);
    for _ in 0..spec.samples {
        let row: Vec<f64> = (0..spec.features).map(|_| gaussian(&mut rng)).collect();
        let mut y: f64 = row[..spec.informative]
            .iter()
            .zip(&coef)
            .map(|(x, c)| x * c)
            .sum();
        y += gaussian(&mut rng) * spec.noise;
        features.push(row);
        labels.push(y);
    }
    let mut ds = Dataset::new(features, labels, Task::Regression);
    ds.normalize_labels();
    ds
}

/// Matched-shape stand-in for the UCI *credit card* dataset of Table 3
/// (30000 samples × 25 features, 2 classes). Pass a smaller `samples` to
/// subsample for quick runs.
pub fn credit_card_like(samples: usize, seed: u64) -> Dataset {
    make_classification(&ClassificationSpec {
        samples,
        features: 25,
        informative: 12,
        classes: 2,
        class_sep: 1.0,
        flip_y: 0.15, // the real task is noisy: ~82% attainable accuracy
        seed,
    })
}

/// Matched-shape stand-in for the UCI *bank marketing* dataset of Table 3
/// (4521 samples × 17 features, 2 classes).
pub fn bank_market_like(samples: usize, seed: u64) -> Dataset {
    make_classification(&ClassificationSpec {
        samples,
        features: 17,
        informative: 9,
        classes: 2,
        class_sep: 1.2,
        flip_y: 0.1,
        seed,
    })
}

/// Matched-shape stand-in for the UCI *appliances energy* regression
/// dataset of Table 3 (19735 samples × 29 features).
pub fn energy_like(samples: usize, seed: u64) -> Dataset {
    make_regression(&RegressionSpec {
        samples,
        features: 29,
        informative: 14,
        noise: 0.3,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_shape_and_balance() {
        let ds = make_classification(&ClassificationSpec::default());
        assert_eq!(ds.num_samples(), 1000);
        assert_eq!(ds.num_features(), 15);
        let mut counts = [0usize; 4];
        for i in 0..ds.num_samples() {
            counts[ds.class(i)] += 1;
        }
        // Balanced up to flip noise.
        for &c in &counts {
            assert!(c > 180 && c < 320, "class count {c}");
        }
    }

    #[test]
    fn informative_features_separate_classes() {
        // Class centroids differ on informative feature 0, so the class-0
        // and class-1 means should differ noticeably there.
        let spec = ClassificationSpec {
            classes: 2,
            class_sep: 2.0,
            flip_y: 0.0,
            ..Default::default()
        };
        let ds = make_classification(&spec);
        let mut mean = [0.0f64; 2];
        let mut cnt = [0usize; 2];
        for i in 0..ds.num_samples() {
            mean[ds.class(i)] += ds.value(i, 0);
            cnt[ds.class(i)] += 1;
        }
        let m0 = mean[0] / cnt[0] as f64;
        let m1 = mean[1] / cnt[1] as f64;
        assert!((m0 - m1).abs() > 2.0, "centroids too close: {m0} vs {m1}");
    }

    #[test]
    fn regression_labels_bounded() {
        let ds = make_regression(&RegressionSpec::default());
        assert!(ds.labels().iter().all(|y| y.abs() <= 1.0));
        // Not all labels identical.
        let first = ds.label(0);
        assert!(ds.labels().iter().any(|&y| (y - first).abs() > 1e-6));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = make_classification(&ClassificationSpec::default());
        let b = make_classification(&ClassificationSpec::default());
        assert_eq!(a.value(17, 3), b.value(17, 3));
        assert_eq!(a.label(17), b.label(17));
    }

    #[test]
    fn table3_presets_have_paper_shapes() {
        let cc = credit_card_like(100, 1);
        assert_eq!(cc.num_features(), 25);
        let bm = bank_market_like(100, 1);
        assert_eq!(bm.num_features(), 17);
        let en = energy_like(100, 1);
        assert_eq!(en.num_features(), 29);
        assert_eq!(en.task(), Task::Regression);
    }
}
