//! Quickstart: three organizations jointly train a decision tree with the
//! Pivot basic protocol, then make a private distributed prediction.
//!
//! Run: `cargo run --release --example quickstart`

use pivot::core::{config::PivotParams, party::PartyContext, predict_basic, train_basic};
use pivot::data::{partition_vertically, synth};
use pivot::transport::run_parties;
use pivot::trees::TreeParams;

fn main() {
    // A synthetic 2-class task: 120 samples × 6 features.
    let data = synth::make_classification(&synth::ClassificationSpec {
        samples: 120,
        features: 6,
        informative: 4,
        classes: 2,
        class_sep: 2.0,
        flip_y: 0.02,
        seed: 7,
    });
    let (train, test) = data.train_test_split(0.25);

    // Vertical federation: 3 clients, disjoint feature blocks, labels held
    // only by client 0 (the super client).
    let m = 3;
    let train_part = partition_vertically(&train, m, 0);
    let test_part = partition_vertically(&test, m, 0);

    let params = PivotParams {
        tree: TreeParams {
            max_depth: 3,
            max_splits: 4,
            ..Default::default()
        },
        keysize: 256,
        ..Default::default()
    };

    // Every client runs the same protocol on its own thread. Nothing but
    // the final model and predictions is ever revealed.
    let results = run_parties(m, |ep| {
        let view = train_part.views[ep.id()].clone();
        let test_view = &test_part.views[ep.id()];
        let mut ctx = PartyContext::setup(&ep, view, params.clone());

        let tree = train_basic::train(&mut ctx);

        let local_samples: Vec<Vec<f64>> = (0..test_view.num_samples())
            .map(|i| test_view.features[i].clone())
            .collect();
        let predictions = predict_basic::predict_batch(&mut ctx, &tree, &local_samples);
        (tree, predictions, ctx.metrics.summary())
    });

    let (tree, predictions, metrics) = &results[0];
    let names: Vec<String> = (0..6).map(|i| format!("feature_{i}")).collect();
    println!("Jointly trained decision tree:\n{}", tree.render(&names));

    let accuracy = pivot::data::metrics::accuracy(predictions, test.labels());
    println!(
        "Test accuracy over {} samples: {accuracy:.3}",
        predictions.len()
    );
    println!("Party-0 protocol costs: {metrics}");
}
