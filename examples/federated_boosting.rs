//! Federated GBDT (§7.2) on an energy-prediction-shaped regression task:
//! the boosting residuals — which would reveal every client's running
//! prediction error — stay encrypted end to end.
//!
//! Run: `cargo run --release --example federated_boosting`

use pivot::core::ensemble::{predict_gbdt_batch, train_gbdt, GbdtProtocolParams};
use pivot::core::{config::PivotParams, party::PartyContext};
use pivot::data::{metrics, partition_vertically, synth};
use pivot::transport::run_parties;

fn main() {
    // Matched-shape stand-in for the appliances-energy dataset (Table 3).
    let data = synth::energy_like(200, 5);
    let (train, test) = data.train_test_split(0.25);

    let m = 3;
    let train_part = partition_vertically(&train, m, 0);
    let test_part = partition_vertically(&test, m, 0);

    let mut params = PivotParams::default();
    params.tree.max_depth = 2;
    params.tree.max_splits = 4;
    params.tree.stop_when_pure = false;
    params.keysize = 256;

    println!("Boosting with encrypted residual labels (W rounds → test MSE):");
    for rounds in [1usize, 2, 4] {
        let gbdt = GbdtProtocolParams {
            rounds,
            learning_rate: 0.5,
        };
        let preds = run_parties(m, |ep| {
            let view = train_part.views[ep.id()].clone();
            let test_view = &test_part.views[ep.id()];
            let mut ctx = PartyContext::setup(&ep, view, params.clone());
            let model = train_gbdt(&mut ctx, &gbdt);
            let local: Vec<Vec<f64>> = (0..test_view.num_samples())
                .map(|i| test_view.features[i].clone())
                .collect();
            predict_gbdt_batch(&mut ctx, &model, &local)
        });
        let mse = metrics::mse(&preds[0], test.labels());
        println!("  W = {rounds}: MSE = {mse:.4}");
    }
    println!();
    println!("Each round the clients jointly predicted all training samples");
    println!("(Algorithm 4, encrypted outputs), updated the residuals on");
    println!("secret shares, and re-encrypted [γ₁], [γ₂] for the next tree —");
    println!("the super client never saw an intermediate label (§7.2).");
}
