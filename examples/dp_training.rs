//! Differentially private federated training (§9.2): the privacy budget
//! trades model accuracy for protection of individual training samples —
//! with all noise sampled *inside* MPC (Algorithms 5 and 6), so no client
//! ever sees it.
//!
//! Run: `cargo run --release --example dp_training`

use pivot::core::dp::{train_dp, DpParams};
use pivot::core::{config::PivotParams, party::PartyContext};
use pivot::data::{metrics, partition_vertically, synth};
use pivot::transport::run_parties;

fn main() {
    let data = synth::make_classification(&synth::ClassificationSpec {
        samples: 150,
        features: 6,
        informative: 4,
        classes: 2,
        class_sep: 2.0,
        flip_y: 0.0,
        seed: 23,
    });
    let m = 2;
    let partition = partition_vertically(&data, m, 0);

    let mut params = PivotParams::default();
    params.tree.max_depth = 2;
    params.tree.max_splits = 4;
    params.tree.stop_when_pure = false;
    params.keysize = 256;

    let samples: Vec<Vec<f64>> = (0..data.num_samples())
        .map(|i| data.sample(i).to_vec())
        .collect();

    println!("Per-query ε → total budget B = 2(h+1)ε → training accuracy:");
    for eps in [0.05f64, 0.5, 4.0] {
        let dp = DpParams {
            epsilon_per_query: eps,
        };
        let trees = run_parties(m, |ep| {
            let view = partition.views[ep.id()].clone();
            let mut ctx = PartyContext::setup(&ep, view, params.clone());
            train_dp(&mut ctx, &dp)
        });
        let preds = trees[0].predict_batch(&samples);
        let acc = metrics::accuracy(&preds, data.labels());
        println!(
            "  ε = {eps:>5.2}  →  B = {:>5.1}  →  accuracy {acc:.3}",
            dp.total_budget(params.tree.max_depth)
        );
    }
    println!();
    println!("Low budgets randomize split selection (exponential mechanism)");
    println!("and leaf labels (Laplace on the class counts); high budgets");
    println!("converge to the non-DP tree. The noise itself is secret-shared —");
    println!("Algorithms 5 and 6 run entirely inside SPDZ.");
}
