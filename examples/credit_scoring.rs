//! The paper's motivating scenario (Figure 1): a bank and a Fintech
//! company jointly evaluate credit-card applications **without revealing
//! the model internals** — the enhanced protocol conceals every split
//! threshold and leaf label, closing the collusion leakages of §5.1.
//!
//! Run: `cargo run --release --example credit_scoring`

use pivot::core::{config::PivotParams, party::PartyContext, predict_enhanced, train_enhanced};
use pivot::data::{metrics, partition_vertically, synth};
use pivot::transport::run_parties;

fn main() {
    // Matched-shape stand-in for the UCI credit-card dataset (Table 3).
    let data = synth::credit_card_like(300, 11);
    let (train, test) = data.train_test_split(0.25);

    // Two organizations: the bank (client 0, holds the repayment labels)
    // and the Fintech company (client 1).
    let m = 2;
    let train_part = partition_vertically(&train, m, 0);
    let test_part = partition_vertically(&test, m, 0);

    let mut params = PivotParams::enhanced();
    params.tree.max_depth = 3;
    params.tree.max_splits = 4;
    params.keysize = 256;

    let results = run_parties(m, |ep| {
        let role = if ep.id() == 0 { "bank" } else { "fintech" };
        let view = train_part.views[ep.id()].clone();
        let test_view = &test_part.views[ep.id()];
        let mut ctx = PartyContext::setup(&ep, view, params.clone());

        // Train the concealed model: split features are public, but the
        // thresholds and approval decisions stay encrypted.
        let model = train_enhanced::train(&mut ctx);

        let applications: Vec<Vec<f64>> = (0..test_view.num_samples().min(40))
            .map(|i| test_view.features[i].clone())
            .collect();
        let decisions = predict_enhanced::predict_batch(&mut ctx, &model, &applications);
        (role, model.internal_count(), decisions)
    });

    let (_, internal, decisions) = &results[0];
    println!("Concealed model: {internal} internal nodes — thresholds and leaf");
    println!("labels exist only as ciphertexts; neither party can replay §5.1's");
    println!("training-label or feature-value inference attacks.\n");

    let truth: Vec<f64> = (0..decisions.len()).map(|i| test.label(i)).collect();
    let accuracy = metrics::accuracy(decisions, &truth);
    println!(
        "Joint credit decisions on {} held-out applications",
        decisions.len()
    );
    println!("agreement with ground truth: {accuracy:.3}");
    println!("(every decision required one secure prediction — only the final");
    println!("approve/deny bit was ever revealed to the two parties)");
}
